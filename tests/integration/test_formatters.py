"""Experiment result formatters (pure functions, no training)."""

import numpy as np

from repro.experiments.figures_curves import CurvesResult, format_curves
from repro.experiments.figures_partition import PartitionFigure, format_partition_figure
from repro.experiments.table2 import Table2Result, format_table2
from repro.experiments.table3 import Table3Result, format_table3
from repro.experiments.table4 import Table4Result, format_table4
from repro.experiments.table5 import Table5Result, format_table5


class TestTable2Format:
    def _result(self, dataset="ds1"):
        r = Table2Result(dataset=dataset)
        for m in ("baseline", "fedproto", "ktpfl", "fedclassavg"):
            for p in ("dirichlet", "skewed"):
                r.cells[(m, p)] = (0.5, 0.01)
        return r

    def test_multiple_datasets_side_by_side(self):
        out = format_table2([self._result("A"), self._result("B")])
        assert "A Dir(0.5)" in out and "B Skewed" in out
        assert out.count("0.5000 ± 0.0100") == 16

    def test_missing_cells_dashed(self):
        r = Table2Result(dataset="X")
        r.cells[("baseline", "dirichlet")] = (0.4, 0.0)
        out = format_table2([r])
        assert "-" in out

    def test_skewed_only_results_still_render_rows(self):
        # regression: methods with only skewed cells must appear
        r = Table2Result(dataset="X")
        r.cells[("baseline", "skewed")] = (0.6, 0.1)
        r.cells[("fedclassavg", "skewed")] = (0.7, 0.1)
        out = format_table2([r])
        assert "Baseline" in out and "Proposed" in out
        assert "0.7000" in out


class TestTable3Format:
    def test_rows_follow_method_order(self):
        r = Table3Result(dataset="d", arch="resnet18")
        r.cells[("FedAvg", 4)] = (0.3, 0.1)
        r.cells[("Proposed", 4)] = (0.5, 0.1)
        out = format_table3(r)
        assert out.index("FedAvg") < out.index("Proposed")
        assert "4 clients" in out


class TestTable4Format:
    def test_columns(self):
        r = Table4Result(dataset="d", accs={"CA": 0.1, "+PR": 0.2, "+CL": 0.3, "+PR,CL": 0.4})
        out = format_table4([r])
        for col in ("CA", "+PR", "+CL", "+PR,CL"):
            assert col in out
        assert "0.4000" in out


class TestTable5Format:
    def test_human_readable_bytes(self):
        r = Table5Result(
            scale="paper",
            model_sharing_bytes=45 * 1024**2,
            ktpfl_bytes=9 * 1024**2,
            proposed_bytes=22 * 1024,
        )
        out = format_table5(r)
        assert "45 MB" in out and "22 KB" in out

    def test_fractional_bytes_keep_two_decimals(self):
        r = Table5Result(
            scale="paper",
            model_sharing_bytes=int(43.73 * 1024**2),
            ktpfl_bytes=int(8.9 * 1024**2),
            proposed_bytes=int(21.5 * 1024),
        )
        out = format_table5(r)
        assert "43.73 MB" in out and "21.50 KB" in out


class TestCurvesFormat:
    def test_all_series_in_output(self):
        r = CurvesResult(title="t")
        r.curves["Ours"] = (np.array([1, 2]), np.array([0.1, 0.5]))
        r.curves["baseline"] = (np.array([1, 2]), np.array([0.1, 0.2]))
        out = format_curves(r)
        assert "Ours" in out and "baseline" in out
        assert "final" in out and "0.5000" in out


class TestPartitionFormat:
    def test_entropy_line(self):
        fig = PartitionFigure(
            dataset="d",
            scheme="dirichlet",
            distribution=np.array([[5, 5], [9, 1]]),
            entropies=np.array([0.69, 0.3]),
        )
        out = format_partition_figure(fig)
        assert "entropy" in out and "dirichlet" in out

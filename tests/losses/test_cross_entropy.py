"""Cross-entropy / NLL / distillation losses."""

import numpy as np
import pytest

from repro.losses import cross_entropy, kl_divergence, nll_loss, soft_cross_entropy
from repro.losses.classification import softmax_probs
from repro.tensor import Tensor, gradcheck, log_softmax


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = _rand((4, 3))
        y = np.array([0, 2, 1, 1])
        lp = logits - np.log(np.exp(logits).sum(1, keepdims=True))
        expected = -lp[np.arange(4), y].mean()
        assert np.isclose(cross_entropy(Tensor(logits), y).item(), expected)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        assert cross_entropy(Tensor(logits), np.array([1, 2])).item() < 1e-6

    def test_uniform_prediction_log_c(self):
        logits = np.zeros((5, 10))
        assert np.isclose(cross_entropy(Tensor(logits), np.zeros(5, dtype=int)).item(), np.log(10))

    def test_grad(self):
        y = np.array([1, 0, 2])
        assert gradcheck(lambda l: cross_entropy(l, y), [_rand((3, 4))])

    def test_grad_is_softmax_minus_onehot(self):
        logits = Tensor(_rand((2, 3)), requires_grad=True)
        y = np.array([0, 2])
        cross_entropy(logits, y).backward()
        p = np.exp(logits.data) / np.exp(logits.data).sum(1, keepdims=True)
        onehot = np.eye(3)[y]
        assert np.allclose(logits.grad, (p - onehot) / 2)

    def test_batch_mismatch_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(_rand((3, 4))), np.array([0, 1]))

    def test_stable_with_large_logits(self):
        logits = _rand((3, 4)) * 1000
        out = cross_entropy(Tensor(logits), np.array([0, 1, 2]))
        assert np.isfinite(out.item())


class TestNLL:
    def test_consistent_with_cross_entropy(self):
        logits = _rand((3, 5))
        y = np.array([0, 1, 4])
        ce = cross_entropy(Tensor(logits), y).item()
        nll = nll_loss(log_softmax(Tensor(logits), axis=-1), y).item()
        assert np.isclose(ce, nll)


class TestKL:
    def test_zero_when_matched(self):
        logits = _rand((3, 4))
        teacher = softmax_probs(Tensor(logits), 1.0)
        assert kl_divergence(Tensor(logits), teacher, 1.0).item() < 1e-10

    def test_nonnegative(self):
        for seed in range(3):
            s = _rand((4, 5), seed)
            t = softmax_probs(Tensor(_rand((4, 5), seed + 10)), 1.0)
            assert kl_divergence(Tensor(s), t).item() >= -1e-10

    def test_grad(self):
        t = softmax_probs(Tensor(_rand((3, 4), 5)), 2.0)
        assert gradcheck(lambda l: kl_divergence(l, t, temperature=2.0), [_rand((3, 4))])

    def test_soft_ce_differs_by_entropy_constant(self):
        s = _rand((3, 4))
        t = softmax_probs(Tensor(_rand((3, 4), 1)), 1.0)
        kl = kl_divergence(Tensor(s), t).item()
        sce = soft_cross_entropy(Tensor(s), t).item()
        entropy = -(t * np.log(t)).sum(axis=1).mean()
        assert np.isclose(sce - kl, entropy, atol=1e-8)

    def test_temperature_scaling_applied(self):
        s = _rand((2, 3))
        t = softmax_probs(Tensor(_rand((2, 3), 1)), 4.0)
        a = soft_cross_entropy(Tensor(s), t, temperature=1.0).item()
        b = soft_cross_entropy(Tensor(s), t, temperature=4.0).item()
        assert a != b


class TestSoftmaxProbs:
    def test_rows_sum_to_one(self):
        p = softmax_probs(Tensor(_rand((4, 6))), 3.0)
        assert np.allclose(p.sum(1), 1.0)

    def test_high_temperature_flattens(self):
        logits = Tensor(np.array([[10.0, 0.0]]))
        sharp = softmax_probs(logits, 1.0)
        flat = softmax_probs(logits, 100.0)
        assert flat[0, 0] < sharp[0, 0]

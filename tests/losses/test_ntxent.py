"""NT-Xent (SimCLR) contrastive loss."""

import numpy as np
import pytest

from repro.losses import ntxent_loss, supcon_loss
from repro.tensor import Tensor, gradcheck


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestNTXent:
    def test_positive(self):
        loss = ntxent_loss(Tensor(_rand((4, 6))), Tensor(_rand((4, 6), 1)))
        assert loss.item() > 0

    def test_lower_when_views_aligned(self):
        a = _rand((4, 6))
        aligned = ntxent_loss(Tensor(a), Tensor(a + 0.01 * _rand((4, 6), 1))).item()
        random = ntxent_loss(Tensor(a), Tensor(_rand((4, 6), 2))).item()
        assert aligned < random

    def test_labels_ignored_vs_supcon(self):
        """With all-distinct labels SupCon degenerates to NT-Xent (each
        anchor's only positive is its own second view)."""
        a, b = _rand((4, 5)), _rand((4, 5), 1)
        labels = np.arange(4)
        s = supcon_loss(Tensor(a), Tensor(b), labels, temperature=0.5).item()
        n = ntxent_loss(Tensor(a), Tensor(b), temperature=0.5).item()
        assert np.isclose(s, n, atol=1e-10)

    def test_gradcheck(self):
        assert gradcheck(
            lambda a, b: ntxent_loss(a, b, temperature=0.5),
            [_rand((3, 4)), _rand((3, 4), 1)],
            atol=1e-4,
        )

    def test_batch_mismatch_raises(self):
        with pytest.raises(ValueError):
            ntxent_loss(Tensor(_rand((3, 4))), Tensor(_rand((2, 4))))

    def test_single_sample_raises(self):
        with pytest.raises(ValueError):
            ntxent_loss(Tensor(_rand((1, 4))), Tensor(_rand((1, 4))))

    def test_scale_invariance(self):
        a, b = _rand((3, 4)), _rand((3, 4), 1)
        l1 = ntxent_loss(Tensor(a), Tensor(b)).item()
        l2 = ntxent_loss(Tensor(7 * a), Tensor(7 * b)).item()
        assert np.isclose(l1, l2, atol=1e-10)


class TestTrainerIntegration:
    def test_ntxent_local_update(self):
        from repro.federated import LocalUpdateConfig, local_update
        from repro.federated.client import FederatedClient
        from repro.models import build_model

        rng = np.random.default_rng(0)
        model = build_model("cnn2layer", in_channels=1, num_classes=3, scale="tiny", rng=rng)
        images = rng.random((16, 1, 8, 8)).astype(np.float32)
        labels = rng.integers(0, 3, 16)
        client = FederatedClient(0, model, images, labels, images[:4], labels[:4], batch_size=8)
        cfg = LocalUpdateConfig(use_contrastive=True, contrastive="ntxent", use_proximal=False)
        loss = local_update(client, 1, cfg)
        assert np.isfinite(loss) and loss > 0

    def test_invalid_contrastive_name(self):
        from repro.federated import LocalUpdateConfig

        with pytest.raises(ValueError):
            LocalUpdateConfig(contrastive="moco")

    def test_fedclassavg_accepts_ntxent(self, micro_federation):
        from repro.core import FedClassAvg

        clients, _ = micro_federation
        algo = FedClassAvg(clients, contrastive="ntxent", seed=0)
        h = algo.run(1)
        assert np.isfinite(h.rounds[-1].train_loss)

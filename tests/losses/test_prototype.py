"""FedProto prototype computation, aggregation, and loss."""

import numpy as np

from repro.losses import aggregate_prototypes, compute_prototypes, prototype_loss
from repro.tensor import Tensor, gradcheck


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestComputePrototypes:
    def test_per_class_means(self):
        feats = np.array([[1.0, 0], [3, 0], [0, 2]])
        labels = np.array([0, 0, 1])
        protos = compute_prototypes(feats, labels, 3)
        assert np.allclose(protos[0], [2, 0])
        assert np.allclose(protos[1], [0, 2])

    def test_absent_class_omitted(self):
        protos = compute_prototypes(_rand((4, 3)), np.zeros(4, dtype=int), 5)
        assert set(protos) == {0}


class TestAggregatePrototypes:
    def test_uniform_average(self):
        c1 = {0: np.array([1.0, 0])}
        c2 = {0: np.array([3.0, 0])}
        out = aggregate_prototypes([c1, c2])
        assert np.allclose(out[0], [2, 0])

    def test_weighted(self):
        c1 = {0: np.array([0.0])}
        c2 = {0: np.array([10.0])}
        out = aggregate_prototypes([c1, c2], weights=[3.0, 1.0])
        assert np.allclose(out[0], [2.5])

    def test_disjoint_classes_union(self):
        out = aggregate_prototypes([{0: np.array([1.0])}, {1: np.array([2.0])}])
        assert set(out) == {0, 1}


class TestPrototypeLoss:
    def test_zero_at_prototypes(self):
        protos = {0: np.array([1.0, 2.0]), 1: np.array([3.0, 4.0])}
        feats = np.array([[1.0, 2.0], [3.0, 4.0]])
        loss = prototype_loss(Tensor(feats), np.array([0, 1]), protos)
        assert loss.item() < 1e-12

    def test_missing_class_contributes_zero(self):
        protos = {0: np.array([0.0, 0.0])}
        feats = np.array([[0.0, 0.0], [100.0, 100.0]])
        loss = prototype_loss(Tensor(feats), np.array([0, 7]), protos)
        assert loss.item() < 1e-12

    def test_empty_prototypes_zero(self):
        loss = prototype_loss(Tensor(_rand((3, 4))), np.array([0, 1, 2]), {})
        assert loss.item() == 0.0

    def test_grad(self):
        protos = {0: _rand(4, 1), 1: _rand(4, 2)}
        labels = np.array([0, 1, 0])
        assert gradcheck(lambda f: prototype_loss(f, labels, protos), [_rand((3, 4))])

    def test_gradient_moves_feature_toward_prototype(self):
        protos = {0: np.array([5.0, 5.0])}
        feats = Tensor(np.array([[0.0, 0.0]]), requires_grad=True)
        prototype_loss(feats, np.array([0]), protos).backward()
        stepped = feats.data - 1.0 * feats.grad
        assert np.linalg.norm(stepped - protos[0]) < np.linalg.norm(feats.data - protos[0])

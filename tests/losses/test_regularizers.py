"""Proximal regularizers."""

import numpy as np
import pytest

from repro import nn
from repro.losses import l2_distance_state, proximal_l2
from repro.tensor import Tensor


class TestProximalL2:
    def test_zero_at_reference(self):
        lin = nn.Linear(3, 2)
        ref = {n: p.data.copy() for n, p in lin.named_parameters()}
        loss = proximal_l2(list(lin.named_parameters()), ref)
        assert loss.item() < 1e-5  # sqrt(eps) floor

    def test_squared_matches_manual(self):
        lin = nn.Linear(3, 2)
        ref = {n: p.data + 0.5 for n, p in lin.named_parameters()}
        loss = proximal_l2(list(lin.named_parameters()), ref, squared=True)
        expected = sum(((p.data - ref[n]) ** 2).sum() for n, p in lin.named_parameters())
        assert np.isclose(loss.item(), expected)

    def test_norm_is_sqrt_of_squared(self):
        lin = nn.Linear(3, 2)
        ref = {n: p.data + 0.3 for n, p in lin.named_parameters()}
        sq = proximal_l2(list(lin.named_parameters()), ref, squared=True).item()
        l2 = proximal_l2(list(lin.named_parameters()), ref, squared=False).item()
        assert np.isclose(l2, np.sqrt(sq), atol=1e-5)

    def test_gradient_points_toward_reference(self):
        lin = nn.Linear(2, 2)
        ref = {n: p.data + 1.0 for n, p in lin.named_parameters()}
        proximal_l2(list(lin.named_parameters()), ref, squared=True).backward()
        # d/dw ||w - r||² = 2(w - r) = -2 < 0: stepping down the gradient
        # moves w toward r
        assert np.all(lin.weight.grad < 0)

    def test_list_reference(self):
        lin = nn.Linear(2, 2)
        refs = [p.data.copy() for p in lin.parameters()]
        loss = proximal_l2(lin.parameters(), refs, squared=True)
        assert loss.item() < 1e-10

    def test_count_mismatch_raises(self):
        lin = nn.Linear(2, 2)
        with pytest.raises(ValueError):
            proximal_l2(lin.parameters(), [np.zeros((2, 2))])

    def test_dict_requires_named_pairs(self):
        lin = nn.Linear(2, 2)
        with pytest.raises(TypeError):
            proximal_l2(lin.parameters(), {"weight": np.zeros((2, 2))})


class TestL2DistanceState:
    def test_zero_for_identical(self):
        s = {"a": np.ones((2, 2))}
        assert l2_distance_state(s, {"a": np.ones((2, 2))}) == 0.0

    def test_matches_norm(self):
        a = {"x": np.array([3.0]), "y": np.array([4.0])}
        b = {"x": np.array([0.0]), "y": np.array([0.0])}
        assert np.isclose(l2_distance_state(a, b), 5.0)

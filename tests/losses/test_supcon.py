"""Supervised contrastive loss: reference properties and gradients."""

import numpy as np
import pytest

from repro.losses import normalize_features, supcon_loss
from repro.tensor import Tensor, gradcheck


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestNormalize:
    def test_unit_rows(self):
        z = normalize_features(Tensor(_rand((5, 8)))).data
        assert np.allclose(np.linalg.norm(z, axis=1), 1.0)

    def test_zero_row_safe(self):
        z = normalize_features(Tensor(np.zeros((2, 4)))).data
        assert np.isfinite(z).all()


class TestSupConValues:
    def test_positive(self):
        labels = np.array([0, 1, 0, 1])
        loss = supcon_loss(Tensor(_rand((4, 8))), Tensor(_rand((4, 8), 1)), labels)
        assert loss.item() > 0

    def test_lower_when_classes_separated(self):
        """Well-separated class clusters ⇒ smaller loss than random features."""
        labels = np.array([0, 0, 1, 1])
        sep_a = np.array([[10.0, 0], [10, 0.1], [-10, 0], [-10, 0.1]])
        sep_b = sep_a + 0.01
        rand_a, rand_b = _rand((4, 2)), _rand((4, 2), 1)
        l_sep = supcon_loss(Tensor(sep_a), Tensor(sep_b), labels).item()
        l_rand = supcon_loss(Tensor(rand_a), Tensor(rand_b), labels).item()
        assert l_sep < l_rand

    def test_permutation_equivariance(self):
        """Permuting samples (with their labels) leaves the loss unchanged."""
        labels = np.array([0, 1, 2, 0])
        a, b = _rand((4, 6)), _rand((4, 6), 1)
        base = supcon_loss(Tensor(a), Tensor(b), labels).item()
        perm = np.array([2, 0, 3, 1])
        permuted = supcon_loss(Tensor(a[perm]), Tensor(b[perm]), labels[perm]).item()
        assert np.isclose(base, permuted, atol=1e-10)

    def test_scale_invariance_of_features(self):
        """L2 normalization makes the loss invariant to feature scaling."""
        labels = np.array([0, 1, 0])
        a, b = _rand((3, 4)), _rand((3, 4), 1)
        l1 = supcon_loss(Tensor(a), Tensor(b), labels).item()
        l2 = supcon_loss(Tensor(5 * a), Tensor(5 * b), labels).item()
        assert np.isclose(l1, l2, atol=1e-10)

    def test_temperature_changes_loss(self):
        labels = np.array([0, 1])
        a, b = _rand((2, 4)), _rand((2, 4), 1)
        l1 = supcon_loss(Tensor(a), Tensor(b), labels, temperature=0.07).item()
        l2 = supcon_loss(Tensor(a), Tensor(b), labels, temperature=1.0).item()
        assert l1 != l2

    def test_all_same_label(self):
        labels = np.zeros(3, dtype=int)
        loss = supcon_loss(Tensor(_rand((3, 4))), Tensor(_rand((3, 4), 1)), labels)
        assert np.isfinite(loss.item())

    def test_all_distinct_labels_still_finite(self):
        # each anchor's only positive is its second view
        labels = np.arange(4)
        loss = supcon_loss(Tensor(_rand((4, 5))), Tensor(_rand((4, 5), 1)), labels)
        assert np.isfinite(loss.item()) and loss.item() > 0

    def test_batch_mismatch_raises(self):
        with pytest.raises(ValueError):
            supcon_loss(Tensor(_rand((3, 4))), Tensor(_rand((2, 4))), np.array([0, 1, 2]))


class TestSupConGrad:
    def test_gradcheck(self):
        labels = np.array([0, 1, 0])
        assert gradcheck(
            lambda a, b: supcon_loss(a, b, labels, temperature=0.5),
            [_rand((3, 5)), _rand((3, 5), 1)],
            atol=1e-4,
        )

    def test_gradient_pulls_positives_together(self):
        """One step of gradient descent must increase positive-pair cosine."""
        labels = np.array([0, 0])
        a = Tensor(_rand((2, 4)), requires_grad=True)
        b = Tensor(_rand((2, 4), 1), requires_grad=True)

        def cos_pos(x, y):
            xa = x / np.linalg.norm(x, axis=1, keepdims=True)
            ya = y / np.linalg.norm(y, axis=1, keepdims=True)
            return (xa * ya).sum(1).mean()

        before = cos_pos(a.data, b.data)
        supcon_loss(a, b, labels, temperature=0.5).backward()
        a2 = a.data - 0.5 * a.grad
        b2 = b.data - 0.5 * b.grad
        assert cos_pos(a2, b2) > before

"""Model zoo: shapes, split structure, classifier exchange, registry."""

import numpy as np
import pytest

from repro.losses import cross_entropy
from repro.models import (
    MODEL_REGISTRY,
    PAPER_ARCHITECTURES,
    SplitModel,
    build_model,
    channel_shuffle,
    heterogeneous_assignment,
)
from repro.tensor import Tensor

ALL_MODELS = sorted(MODEL_REGISTRY)


def _model(name, **kw):
    defaults = dict(in_channels=3, num_classes=10, scale="tiny", rng=np.random.default_rng(0))
    defaults.update(kw)
    return build_model(name, **defaults)


def _x(n=2, c=3, s=16, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=(n, c, s, s)))


class TestAllArchitectures:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_logits_shape(self, name):
        m = _model(name)
        assert m(_x()).shape == (2, 10)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_feature_shape(self, name):
        m = _model(name)
        assert m.features(_x()).shape == (2, 32)  # tiny feature_dim

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_backward_reaches_all_parameters(self, name):
        m = _model(name)
        m.train()
        loss = cross_entropy(m(_x()), np.array([0, 1]))
        loss.backward()
        missing = [n for n, p in m.named_parameters() if p.grad is None]
        assert not missing, f"no grad for {missing}"

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_grayscale_input(self, name):
        m = _model(name, in_channels=1)
        assert m(_x(c=1)).shape == (2, 10)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_custom_num_classes(self, name):
        m = _model(name, num_classes=26)
        assert m(_x()).shape == (2, 26)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_state_dict_roundtrip(self, name):
        m1 = _model(name)
        m2 = _model(name, rng=np.random.default_rng(99))
        m2.load_state_dict(m1.state_dict())
        m1.eval(), m2.eval()
        x = _x()
        assert np.allclose(m1(x).data, m2(x).data)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_deterministic_construction(self, name):
        m1 = _model(name, rng=np.random.default_rng(3))
        m2 = _model(name, rng=np.random.default_rng(3))
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2 and np.array_equal(p1.data, p2.data)


class TestClassifierExchange:
    def test_classifier_states_are_shape_compatible_across_archs(self):
        """The crux of FedClassAvg: any client's classifier fits any other."""
        models = [_model(n) for n in PAPER_ARCHITECTURES]
        state = models[0].classifier_state()
        for m in models[1:]:
            m.load_classifier_state(state)
            assert np.allclose(m.classifier.weight.data, models[0].classifier.weight.data)

    def test_classifier_state_keys_prefixed(self):
        m = _model("alexnet")
        assert set(m.classifier_state()) == {"classifier.weight", "classifier.bias"}

    def test_load_classifier_keeps_extractor(self):
        m = _model("resnet18")
        fe_before = {n: p.data.copy() for n, p in m.feature_extractor.named_parameters()}
        other = _model("alexnet", rng=np.random.default_rng(5))
        m.load_classifier_state(other.classifier_state())
        for n, p in m.feature_extractor.named_parameters():
            assert np.array_equal(p.data, fe_before[n])

    def test_classifier_parameters_pairs(self):
        m = _model("cnn2layer")
        pairs = m.classifier_parameters()
        assert [n for n, _ in pairs] == ["classifier.weight", "classifier.bias"]


class TestChannelShuffle:
    def test_shape_preserved(self):
        x = Tensor(np.arange(2 * 4 * 3 * 3, dtype=np.float64).reshape(2, 4, 3, 3))
        assert channel_shuffle(x, 2).shape == (2, 4, 3, 3)

    def test_interleaves_groups(self):
        # channels [0,1,2,3] with 2 groups -> [0,2,1,3]
        x = Tensor(np.arange(4, dtype=np.float64).reshape(1, 4, 1, 1))
        out = channel_shuffle(x, 2).data[0, :, 0, 0]
        assert np.array_equal(out, [0, 2, 1, 3])

    def test_is_permutation(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1, 8, 2, 2)))
        out = channel_shuffle(x, 4).data
        assert np.allclose(np.sort(out.ravel()), np.sort(x.data.ravel()))

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            channel_shuffle(Tensor(np.zeros((1, 5, 2, 2))), 2)


class TestRegistry:
    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("vgg")

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet18", scale="huge")

    def test_feature_dim_override(self):
        m = build_model("cnn2layer", feature_dim=17, rng=np.random.default_rng(0))
        assert m.features(_x(c=3)).shape == (2, 17)

    def test_constructor_overrides_forwarded(self):
        m = build_model(
            "resnet18",
            scale="tiny",
            stage_strides=(2, 2),
            rng=np.random.default_rng(0),
        )
        assert m(_x()).shape == (2, 10)

    def test_round_robin_assignment(self):
        archs = heterogeneous_assignment(10)
        assert archs[0] == "resnet18" and archs[1] == "shufflenetv2"
        assert archs[4] == "resnet18"  # wraps at 4

    def test_assignment_custom_list(self):
        archs = heterogeneous_assignment(4, ("alexnet",))
        assert archs == ["alexnet"] * 4


class TestSplitModel:
    def test_forward_equals_classifier_of_features(self):
        m = _model("cnn2layer")
        m.eval()
        x = _x()
        assert np.allclose(m(x).data, m.classifier(m.features(x)).data)

    def test_arch_tag(self):
        assert _model("googlenet").arch == "googlenet"

    def test_heterogeneous_models_have_different_param_counts(self):
        counts = {n: _model(n).num_parameters() for n in PAPER_ARCHITECTURES}
        assert len(set(counts.values())) == len(counts)

"""Paper-scale model construction (no training — just fidelity checks)."""

import numpy as np
import pytest

from repro.models import build_model
from repro.tensor import Tensor, no_grad


class TestPaperScale:
    def test_resnet18_parameter_count_near_torchvision(self):
        """torchvision ResNet-18 has ~11.2M backbone parameters; our
        paper-scale build (+512-d projection +classifier) should land in
        the same regime."""
        m = build_model(
            "resnet18", in_channels=3, num_classes=10, scale="paper", rng=np.random.default_rng(0)
        )
        n = m.num_parameters()
        assert 10e6 < n < 13e6, f"got {n}"

    def test_feature_dim_512(self):
        m = build_model(
            "cnn2layer", in_channels=1, num_classes=10, scale="paper", rng=np.random.default_rng(0)
        )
        assert m.feature_dim == 512

    def test_classifier_payload_is_paper_sized(self):
        """512×10 classifier ≈ 20.5 KB fp32 (paper reports 22 KB)."""
        from repro.comm import payload_nbytes

        m = build_model(
            "cnn2layer", in_channels=1, num_classes=10, scale="paper", rng=np.random.default_rng(0)
        )
        kb = payload_nbytes(m.classifier_state()) / 1024
        assert 18 < kb < 25

    @pytest.mark.parametrize("name", ["resnet18", "alexnet"])
    def test_paper_scale_forward_pass(self, name):
        m = build_model(
            name, in_channels=3, num_classes=10, scale="paper", rng=np.random.default_rng(0)
        )
        m.eval()
        with no_grad():
            out = m(Tensor(np.random.default_rng(1).normal(size=(1, 3, 32, 32))))
        assert out.shape == (1, 10)
        assert np.isfinite(out.data).all()

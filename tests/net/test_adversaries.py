"""Adversary personas: seeded corruption keyed on logical identity."""

import numpy as np
import pytest

from repro.federated.faults import FaultInjector
from repro.net.chaos import AdversaryPersona, AdversarySchedule


def _state(value=1.0):
    return {
        "w": np.full((2, 3), value, dtype=np.float32),
        "b": np.full(3, value, dtype=np.float32),
        "n": np.array([5], dtype=np.int64),
    }


class TestPersona:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AdversaryPersona("ddos")

    def test_param_validation(self):
        with pytest.raises(ValueError):
            AdversaryPersona("stale_replay", lag=0)
        with pytest.raises(ValueError):
            AdversaryPersona("gaussian_noise", sigma=0.0)

    def test_from_spec_string_and_dict(self):
        assert AdversaryPersona.from_spec("sign_flip").kind == "sign_flip"
        p = AdversaryPersona.from_spec({"persona": "scale", "factor": 50.0})
        assert (p.kind, p.factor) == ("scale", 50.0)

    def test_dict_round_trip(self):
        for p in (
            AdversaryPersona("nan_bomb"),
            AdversaryPersona("scale", factor=7.0),
            AdversaryPersona("gaussian_noise", sigma=0.3),
            AdversaryPersona("stale_replay", lag=2),
        ):
            assert AdversaryPersona.from_spec(p.to_dict()) == p


class TestScheduleCorruption:
    def test_honest_clients_untouched(self):
        sched = AdversarySchedule({1: AdversaryPersona("sign_flip")}, seed=0)
        s = _state()
        assert sched.corrupt(0, 3, s) is s

    def test_init_round_never_corrupted(self):
        sched = AdversarySchedule({1: AdversaryPersona("nan_bomb")}, seed=0)
        s = _state()
        assert sched.corrupt(1, -1, s) is s

    def test_nan_bomb(self):
        sched = AdversarySchedule({0: AdversaryPersona("nan_bomb")}, seed=0)
        out = sched.corrupt(0, 0, _state())
        assert np.isnan(out["w"]).all()

    def test_sign_flip(self):
        sched = AdversarySchedule({0: AdversaryPersona("sign_flip")}, seed=0)
        out = sched.corrupt(0, 0, _state(2.0))
        assert np.allclose(out["w"], -2.0)

    def test_scale_preserves_dtype(self):
        sched = AdversarySchedule({0: AdversaryPersona("scale", factor=10.0)}, seed=0)
        out = sched.corrupt(0, 0, _state(2.0))
        assert np.allclose(out["w"], 20.0)
        assert out["w"].dtype == np.float32

    def test_integer_buffers_never_corrupted(self):
        for kind in ("nan_bomb", "sign_flip", "scale", "gaussian_noise"):
            sched = AdversarySchedule({0: AdversaryPersona(kind)}, seed=0)
            out = sched.corrupt(0, 0, _state())
            assert out["n"].dtype == np.int64 and out["n"][0] == 5

    def test_gaussian_noise_deterministic_per_identity(self):
        a = AdversarySchedule({0: AdversaryPersona("gaussian_noise")}, seed=3)
        b = AdversarySchedule({0: AdversaryPersona("gaussian_noise")}, seed=3)
        out_a = a.corrupt(0, 2, _state())
        out_b = b.corrupt(0, 2, _state())
        assert np.array_equal(out_a["w"], out_b["w"])
        # different round -> different noise
        out_c = b.corrupt(0, 3, _state())
        assert not np.array_equal(out_a["w"], out_c["w"])

    def test_gaussian_noise_seed_sensitivity(self):
        a = AdversarySchedule({0: AdversaryPersona("gaussian_noise")}, seed=1)
        b = AdversarySchedule({0: AdversaryPersona("gaussian_noise")}, seed=2)
        assert not np.array_equal(
            a.corrupt(0, 0, _state())["w"], b.corrupt(0, 0, _state())["w"]
        )

    def test_stale_replay_is_honest_until_history_fills(self):
        sched = AdversarySchedule({0: AdversaryPersona("stale_replay", lag=1)}, seed=0)
        r0 = sched.corrupt(0, 0, _state(0.0))
        assert np.allclose(r0["w"], 0.0)  # nothing older to replay yet
        r1 = sched.corrupt(0, 1, _state(1.0))
        assert np.allclose(r1["w"], 0.0)  # replays round 0
        r2 = sched.corrupt(0, 2, _state(2.0))
        assert np.allclose(r2["w"], 1.0)  # replays round 1

    def test_corruption_tallied(self):
        sched = AdversarySchedule({0: AdversaryPersona("sign_flip")}, seed=0)
        sched.corrupt(0, 0, _state())
        sched.corrupt(0, 1, _state())
        sched.corrupt(1, 0, _state())  # honest — not tallied
        report = sched.report()
        assert report["counts"] == {"sign_flip": 2}
        assert report["by_client"] == {"0": 2}


class TestScheduleConfig:
    def test_json_round_trip(self):
        sched = AdversarySchedule(
            {
                0: AdversaryPersona("sign_flip"),
                2: AdversaryPersona("scale", factor=100.0),
                3: AdversaryPersona("stale_replay", lag=2),
            },
            seed=7,
        )
        back = AdversarySchedule.from_json(sched.to_json())
        assert back.seed == 7
        assert back.personas == sched.personas

    def test_from_config_accepts_string_specs(self):
        sched = AdversarySchedule.from_config(
            {"seed": 1, "clients": {"1": "nan_bomb", "2": {"persona": "sign_flip"}}}
        )
        assert sched.personas[1].kind == "nan_bomb"
        assert sched.personas[2].kind == "sign_flip"

    def test_enabled(self):
        assert not AdversarySchedule({}, seed=0).enabled
        assert AdversarySchedule({0: AdversaryPersona("sign_flip")}, seed=0).enabled


class TestFaultInjectorDelegate:
    def test_no_adversaries_is_identity(self):
        inj = FaultInjector(seed=0)
        s = _state()
        assert inj.corrupt(0, 0, s) is s

    def test_delegates_to_schedule(self):
        sched = AdversarySchedule({0: AdversaryPersona("sign_flip")}, seed=0)
        inj = FaultInjector(seed=0, adversaries=sched)
        out = inj.corrupt(0, 0, _state(3.0))
        assert np.allclose(out["w"], -3.0)

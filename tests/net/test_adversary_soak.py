"""Adversary soak: the determinism bar must extend to attacked runs.

In the style of ``test_chaos_soak.py``: a seeded 30%-sign-flip cohort
(1 of 3 clients) is run three times over TCP with ``trimmed_mean`` and
the admission firewall on.  The acceptance bar from the issue:

* all three attacked runs produce **bit-identical** final global
  classifiers and identical rejection telemetry;
* the TCP final is bit-identical to the SimComm path under the same
  adversary schedule (corruption is a pure function of logical identity,
  never of transport);
* rejection counts match the adversary schedule *exactly* — the flipped
  client is quarantined every round, honest clients never;
* on the accuracy side (sim path, firewall off so the aggregator alone
  must cope): ``trimmed_mean`` and ``krum`` stay within 2 points of the
  clean baseline while the plain weighted mean measurably degrades.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro import telemetry
from repro.core import FedClassAvg
from repro.federated import FederationSpec, build_federation, default_firewall
from repro.net.chaos import AdversarySchedule
from repro.net.launcher import run_tcp_federation
from repro.utils.rng import seed_all

ROUNDS = 3
NUM_CLIENTS = 3
AGGREGATOR = "trimmed_mean:0.34"
#: 1 of 3 clients sign-flips every upload — the issue's "30% cohort"
ADV = {"seed": 7, "clients": {"1": "sign_flip"}}


def spec() -> FederationSpec:
    return FederationSpec(
        dataset="fashion_mnist-tiny",
        num_clients=NUM_CLIENTS,
        partition="dirichlet",
        n_train=120,
        n_test=90,
        test_per_client=15,
        batch_size=16,
        lr=3e-3,
        seed=0,
    )


def _tcp_run(tmp_path, tag):
    tel = telemetry.configure(jsonl=str(tmp_path / f"{tag}.jsonl"))
    try:
        result, codes = run_tcp_federation(
            asdict(spec()),
            rounds=ROUNDS,
            workers=2,
            trainer={"rho": 0.1},
            seed=0,
            round_timeout_s=60.0,
            aggregator=AGGREGATOR,
            firewall=default_firewall(),
            adversaries=ADV,
        )
        counters = {"net.rejected_updates": telemetry.counter("net.rejected_updates").value}
        alerts = list(tel.health.alerts)
    finally:
        tel.close()
        telemetry.disable()
    return result, codes, counters, alerts


def _fingerprint(result, counters, alerts):
    """Everything that must agree exactly across same-seed attacked runs."""
    return {
        "rejected": [
            (r["round"], r["client"], r["validator"]) for r in result.rejected_updates
        ],
        "counters": counters,
        "alerts": [
            (a["round"], a["client"], a["validator"])
            for a in alerts
            if a["detector"] == "update_rejected"
        ],
        "survivors": [tuple(e["survivors"]) for e in result.round_log],
        "global": {k: v.tobytes() for k, v in result.global_state.items()},
    }


@pytest.fixture(scope="module")
def soak(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("adversary_soak")
    return [_tcp_run(tmp, f"attacked{i}") for i in range(3)]


@pytest.fixture(scope="module")
def sim_attacked():
    """Same schedule over SimComm: (rejections, global_state)."""
    seed_all(0)
    clients, _ = build_federation(spec())
    algo = FedClassAvg(
        clients,
        rho=0.1,
        sample_rate=1.0,
        local_epochs=1,
        seed=0,
        aggregator=AGGREGATOR,
        firewall=default_firewall(),
        adversaries=AdversarySchedule.from_config(ADV),
    )
    algo.run(ROUNDS)
    return algo.rejections, algo.global_state


class TestAttackedDeterminism:
    def test_workers_exit_cleanly(self, soak):
        for _, codes, _, _ in soak:
            assert codes == [0, 0]

    def test_three_invocations_bit_identical(self, soak):
        prints = [_fingerprint(r, c, a) for r, _, c, a in soak]
        assert prints[0] == prints[1] == prints[2]

    def test_tcp_matches_sim_under_attack(self, soak, sim_attacked):
        sim_rejections, sim_state = sim_attacked
        result, _, _, _ = soak[0]
        assert set(result.global_state) == set(sim_state)
        for key in sim_state:
            a, b = sim_state[key], result.global_state[key]
            assert a.dtype == b.dtype and a.shape == b.shape
            assert np.array_equal(a, b), f"{key} diverged from sim under attack"
        assert [(r["round"], r["client"], r["validator"]) for r in sim_rejections] == [
            (r["round"], r["client"], r["validator"]) for r in result.rejected_updates
        ]


class TestRejectionSchedule:
    def test_rejections_match_the_adversary_schedule_exactly(self, soak):
        result, _, counters, _ = soak[0]
        # client 1 flips every round and is quarantined every round;
        # honest clients are never rejected
        assert [(r["round"], r["client"]) for r in result.rejected_updates] == [
            (t, 1) for t in range(ROUNDS)
        ]
        assert counters["net.rejected_updates"] == ROUNDS

    def test_flipped_updates_rejected_by_direction(self, soak):
        result, _, _, _ = soak[0]
        assert all(r["validator"] == "cosine_outlier" for r in result.rejected_updates)

    def test_alerts_name_the_quarantined_client(self, soak):
        _, _, _, alerts = soak[0]
        rejected = [a for a in alerts if a["detector"] == "update_rejected"]
        assert [a["client"] for a in rejected] == [1] * ROUNDS
        assert all(a["severity"] == "warning" for a in rejected)

    def test_rounds_complete_with_honest_survivors(self, soak):
        result, _, _, _ = soak[0]
        for entry in result.round_log:
            assert entry["survivors"] == [0, 2]
            assert [r["client"] for r in entry["rejected"]] == [1]


class TestRobustnessWin:
    """Accuracy legs run on the sim path with the firewall OFF — the
    aggregator alone must cope with the poisoned cohort.  rho couples
    local training to the broadcast classifier, so a poisoned global
    measurably drags the plain mean down while robust rules shrug."""

    ROUNDS = 8
    RHO = 4.0

    def _accuracy(self, aggregator=None, adversaries=None):
        seed_all(0)
        s = FederationSpec(
            dataset="fashion_mnist-tiny",
            num_clients=NUM_CLIENTS,
            partition="dirichlet",
            n_train=600,
            n_test=300,
            test_per_client=60,
            batch_size=32,
            lr=3e-3,
            seed=0,
        )
        clients, _ = build_federation(s)
        adv = AdversarySchedule.from_config(adversaries) if adversaries else None
        algo = FedClassAvg(
            clients,
            rho=self.RHO,
            sample_rate=1.0,
            local_epochs=1,
            seed=0,
            aggregator=aggregator,
            adversaries=adv,
        )
        hist = algo.run(self.ROUNDS)
        return hist.rounds[-1].mean_acc

    @pytest.fixture(scope="class")
    def accuracies(self):
        return {
            "clean": self._accuracy(),
            "mean": self._accuracy(adversaries=ADV),
            "trimmed_mean": self._accuracy(aggregator=AGGREGATOR, adversaries=ADV),
            "krum": self._accuracy(aggregator="krum:1", adversaries=ADV),
        }

    def test_plain_mean_measurably_degrades(self, accuracies):
        drop = accuracies["clean"] - accuracies["mean"]
        assert drop >= 0.08, f"sign-flip barely moved the mean ({drop:+.3f})"

    def test_trimmed_mean_holds_within_two_points(self, accuracies):
        assert accuracies["trimmed_mean"] >= accuracies["clean"] - 0.02

    def test_krum_holds_within_two_points(self, accuracies):
        assert accuracies["krum"] >= accuracies["clean"] - 0.02

"""Unit tests for the deterministic chaos layer (repro.net.chaos).

Everything here must hold for the soak test's determinism claim to be
meaningful: same seed → same fault decisions, independent of timing,
resends draw fresh, and every destructive fault is detectable on the
server side (CRC, truncation, refused connect).
"""

import socket

import numpy as np
import pytest

from repro.net.chaos import ChaosConfig, ChaosConnection, ChaosEngine
from repro.net.protocol import ChecksumMismatch, MsgType, Message, Truncated, recv_message


class TestChaosConfig:
    def test_default_is_disabled(self):
        assert not ChaosConfig().enabled

    def test_any_probability_enables(self):
        assert ChaosConfig(bitflip_p=0.01).enabled
        assert ChaosConfig(connect_refuse_p=0.01).enabled

    def test_json_roundtrip(self):
        cfg = ChaosConfig(seed=7, disconnect_p=0.1, bitflip_p=0.05, partition_attempts=3)
        assert ChaosConfig.from_json(cfg.to_json()) == cfg

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            ChaosConfig(delay_p=1.0)
        with pytest.raises(ValueError):
            ChaosConfig(bitflip_p=-0.1)

    def test_rejects_bad_partition_attempts(self):
        with pytest.raises(ValueError):
            ChaosConfig(partition_attempts=0)

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError):
            ChaosConfig.from_json("[1, 2]")


def _update(round_idx: int, client: int) -> Message:
    return Message(
        MsgType.CLIENT_UPDATE,
        {"round": round_idx, "client": client, "n_k": 40, "loss": 0.5},
        {"w": np.zeros((4, 4), dtype=np.float32)},
    )


class TestChaosEngine:
    CFG = ChaosConfig(seed=3, disconnect_p=0.2, bitflip_p=0.2, partition_p=0.1, delay_p=0.2)

    def frames(self):
        return [_update(t, k) for t in range(6) for k in range(4)]

    def test_same_seed_same_schedule(self):
        a, b = ChaosEngine(self.CFG, scope=0), ChaosEngine(self.CFG, scope=0)
        decisions = [a.fault_for(m) for m in self.frames()]
        assert decisions == [b.fault_for(m) for m in self.frames()]
        assert any(d is not None for d in decisions), "schedule should fire at these rates"

    def test_different_scopes_differ(self):
        a, b = ChaosEngine(self.CFG, scope=0), ChaosEngine(self.CFG, scope=1)
        frames = self.frames()
        assert [a.fault_for(m) for m in frames] != [b.fault_for(m) for m in frames]

    def test_resend_draws_fresh_stream(self):
        # a frame that faulted once must not fault identically forever:
        # the per-key attempt counter gives each retry its own stream
        eng = ChaosEngine(ChaosConfig(seed=0, disconnect_p=0.5), scope=0)
        msg = _update(0, 0)
        decisions = {eng.fault_for(msg) for _ in range(32)}
        assert None in decisions and "disconnect" in decisions

    def test_control_frames_never_faulted(self):
        eng = ChaosEngine(ChaosConfig(seed=0, disconnect_p=0.99, bitflip_p=0.009), scope=0)
        for mt in (MsgType.HELLO, MsgType.REJOIN, MsgType.HEARTBEAT, MsgType.BYE):
            assert eng.fault_for(Message(mt, {"round": 0, "client": 0})) is None

    def test_partition_refuses_exactly_budget(self):
        eng = ChaosEngine(ChaosConfig(seed=0, partition_p=0.1, partition_attempts=2), scope=0)
        eng.open_partition()
        for _ in range(2):
            with pytest.raises(ConnectionRefusedError):
                eng.check_connect()
        eng.check_connect()  # budget spent — connects flow again
        assert eng.counts["connect_refusals"] == 2
        assert eng.counts["partitions"] == 1

    def test_connect_refusals_are_attempt_keyed(self):
        cfg = ChaosConfig(seed=5, connect_refuse_p=0.5)
        outcomes = []
        for engine in (ChaosEngine(cfg), ChaosEngine(cfg)):
            seq = []
            for _ in range(16):
                try:
                    engine.check_connect()
                    seq.append(True)
                except ConnectionRefusedError:
                    seq.append(False)
            outcomes.append(seq)
        assert outcomes[0] == outcomes[1]
        assert True in outcomes[0] and False in outcomes[0]


class TestChaosConnection:
    def pair(self, engine):
        # real TCP loopback pair (Connection sets TCP_NODELAY, which
        # AF_UNIX socketpairs reject)
        lst = socket.create_server(("127.0.0.1", 0))
        a = socket.create_connection(lst.getsockname())
        b, _ = lst.accept()
        lst.close()
        return ChaosConnection(a, engine), b

    def test_bitflip_is_caught_by_crc(self):
        eng = ChaosEngine(ChaosConfig(seed=0, bitflip_p=0.95), scope=0)
        conn, server_sock = self.pair(eng)
        msg = _update(0, 0)
        assert eng.fault_for(_update(0, 0)) == "bitflip"  # peek a parallel draw
        with pytest.raises(ConnectionResetError):
            conn.send(msg)
        with pytest.raises(ChecksumMismatch):
            recv_message(server_sock)
        assert eng.counts["bitflips"] == 1
        server_sock.close()

    def test_disconnect_truncates_mid_frame(self):
        eng = ChaosEngine(ChaosConfig(seed=0, disconnect_p=0.95), scope=0)
        conn, server_sock = self.pair(eng)
        with pytest.raises(ConnectionResetError):
            conn.send(_update(0, 0))
        with pytest.raises(Truncated):
            recv_message(server_sock)
        assert eng.counts["disconnects"] == 1
        server_sock.close()

    def test_clean_frame_passes_through(self):
        eng = ChaosEngine(ChaosConfig(seed=0, delay_p=0.0), scope=0)
        conn, server_sock = self.pair(eng)
        msg = _update(1, 2)
        conn.send(msg)
        got, _ = recv_message(server_sock)
        assert got.type == MsgType.CLIENT_UPDATE
        assert got.meta["round"] == 1 and got.meta["client"] == 2
        assert np.array_equal(got.state["w"], msg.state["w"])
        conn.close()
        server_sock.close()

    def test_delay_sends_intact(self):
        eng = ChaosEngine(ChaosConfig(seed=0, delay_p=0.95, delay_s=0.001), scope=0)
        conn, server_sock = self.pair(eng)
        conn.send(_update(0, 0))
        got, _ = recv_message(server_sock)
        assert got.meta["client"] == 0
        assert eng.counts["delays"] >= 1
        conn.close()
        server_sock.close()

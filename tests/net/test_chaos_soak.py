"""Chaos soak: seeded fault injection must be deterministic AND lossless.

One clean reference run, then three chaos runs with the same
:class:`ChaosConfig` seed.  The acceptance bar from the issue:

* every chaos run's final global classifier is **bit-identical** to the
  clean run's (recovered faults change nothing — rejoined workers
  resend their cached updates instead of retraining);
* the three chaos runs agree **exactly** on lost/recovered/rejoin/CRC
  telemetry and on the workers' self-reported fault tallies (fault
  decisions are keyed on logical frame identity, never wall-clock).
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro import telemetry
from repro.federated import FederationSpec
from repro.net.chaos import ChaosConfig
from repro.net.launcher import run_tcp_federation

ROUNDS = 3
NUM_CLIENTS = 3
CHAOS = ChaosConfig(
    seed=11,
    disconnect_p=0.15,
    bitflip_p=0.10,
    partition_p=0.05,
    partition_attempts=2,
    delay_p=0.10,
    delay_s=0.01,
)


def spec() -> FederationSpec:
    return FederationSpec(
        dataset="fashion_mnist-tiny",
        num_clients=NUM_CLIENTS,
        partition="dirichlet",
        n_train=120,
        n_test=90,
        test_per_client=15,
        batch_size=16,
        lr=3e-3,
        seed=0,
    )


def _run(tmp_path, tag, chaos_config=None):
    tel = telemetry.configure(jsonl=str(tmp_path / f"{tag}.jsonl"))
    try:
        result, codes = run_tcp_federation(
            asdict(spec()),
            rounds=ROUNDS,
            workers=2,
            trainer={"rho": 0.1},
            seed=0,
            round_timeout_s=60.0,
            liveness_timeout_s=15.0,
            heartbeat_s=0.3,
            chaos_config=chaos_config,
            verbose=True,
        )
        counters = {
            name: telemetry.counter(name).value
            for name in (
                "net.rejoins",
                "net.clients_lost",
                "net.clients_recovered",
                "net.crc_errors",
            )
        }
    finally:
        tel.close()
        telemetry.disable()
    return result, codes, counters


def _fingerprint(result, counters):
    """Everything that must agree exactly across same-seed chaos runs."""
    reports = sorted(
        (
            tuple(r.get("client_ids", [])),
            r.get("rejoins", 0),
            r.get("connect_retries", 0),
            tuple(sorted(r.get("chaos", {}).items())),
        )
        for r in result.worker_reports
    )
    return {
        "lost": [(e["round"], e["client"]) for e in result.lost_clients],
        "recovered": [(e["round"], e["client"]) for e in result.recovered_clients],
        "permanently_lost": result.permanently_lost,
        "counters": counters,
        "worker_reports": reports,
    }


@pytest.fixture(scope="module")
def soak(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("soak")
    clean = _run(tmp, "clean")
    chaotic = [_run(tmp, f"chaos{i}", chaos_config=CHAOS) for i in range(3)]
    return clean, chaotic


class TestChaosSoak:
    def test_clean_run_is_actually_clean(self, soak):
        (result, codes, counters), _ = soak
        assert codes == [0, 0]
        assert result.lost_clients == []
        assert counters["net.rejoins"] == 0

    def test_chaos_schedule_fires(self, soak):
        _, chaotic = soak
        _, _, counters = chaotic[0]
        assert counters["net.rejoins"] > 0, "chaos config too tame — nothing was injected"

    def test_all_faults_recovered(self, soak):
        _, chaotic = soak
        for result, codes, _ in chaotic:
            assert result.permanently_lost == []
            assert codes == [0, 0]  # in-process rejoin: the worker never dies

    def test_global_state_bit_identical_to_clean(self, soak):
        (clean_result, _, _), chaotic = soak
        for i, (result, _, _) in enumerate(chaotic):
            assert set(result.global_state) == set(clean_result.global_state)
            for key in clean_result.global_state:
                a, b = clean_result.global_state[key], result.global_state[key]
                assert a.dtype == b.dtype and a.shape == b.shape
                assert np.array_equal(a, b), f"chaos run {i}: {key} diverged from clean"

    def test_three_invocations_identical_telemetry(self, soak):
        _, chaotic = soak
        prints = [_fingerprint(result, counters) for result, _, counters in chaotic]
        assert prints[0] == prints[1] == prints[2]

    def test_worker_reports_carry_chaos_tallies(self, soak):
        _, chaotic = soak
        result, _, _ = chaotic[0]
        assert len(result.worker_reports) == 2
        total = sum(
            sum(r.get("chaos", {}).values()) for r in result.worker_reports
        )
        assert total > 0, "workers reported no injected faults"

    def test_history_matches_clean(self, soak):
        (clean_result, _, _), chaotic = soak
        for result, _, _ in chaotic:
            for clean_m, m in zip(clean_result.history.rounds, result.history.rounds):
                assert m.mean_acc == pytest.approx(clean_m.mean_acc)
                assert m.train_loss == pytest.approx(clean_m.train_loss)

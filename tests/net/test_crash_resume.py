"""Server crash-resume: checkpoint format, bit-identical continuation, reaping.

The e2e flow mirrors a real outage: workers are launched once and keep
running; the first server checkpoints every round and simulates a crash
after round 0 (sockets dropped with no goodbye); a second server binds
the same port with ``--resume`` and the surviving fleet rejoins.  The
acceptance bar is the strongest one available: the resumed run's final
global classifier is **bit-identical** to an uninterrupted run's.
"""

import os
from dataclasses import asdict

import numpy as np
import pytest

from repro.federated import FederationSpec
from repro.federated.checkpoint import (
    load_server_checkpoint,
    restore_server_checkpoint,
    save_server_checkpoint,
    server_checkpoint_bytes,
)
from repro.net.launcher import (
    assign_clients,
    launch_workers,
    reap_workers,
    run_tcp_federation,
)
from repro.net.server import FedTcpServer, SimulatedCrash, make_run_config

ROUNDS = 3
NUM_CLIENTS = 3


def spec() -> FederationSpec:
    return FederationSpec(
        dataset="fashion_mnist-tiny",
        num_clients=NUM_CLIENTS,
        partition="dirichlet",
        n_train=120,
        n_test=90,
        test_per_client=15,
        batch_size=16,
        lr=3e-3,
        seed=0,
    )


class TestCheckpointFormat:
    META = {"next_round": 2, "sampler_rng": {"state": 7}, "data_sizes": {"0": 40}}

    def state(self):
        return {
            "w": np.arange(12, dtype=np.float32).reshape(3, 4),
            "b": np.ones(3, dtype=np.float64),
        }

    def test_bytes_roundtrip(self):
        blob = server_checkpoint_bytes(self.META, self.state())
        meta, state = restore_server_checkpoint(blob)
        assert meta == self.META
        for k, v in self.state().items():
            assert v.dtype == state[k].dtype
            assert np.array_equal(v, state[k])

    def test_bad_magic_rejected(self):
        blob = server_checkpoint_bytes(self.META, self.state())
        with pytest.raises(ValueError):
            restore_server_checkpoint(b"XXXX" + blob[4:])

    def test_file_roundtrip_is_atomic(self, tmp_path):
        path = str(tmp_path / "server.ckpt")
        save_server_checkpoint(path, self.META, self.state())
        assert not os.path.exists(path + ".tmp"), "tmp file must be renamed away"
        meta, state = load_server_checkpoint(path)
        assert meta["next_round"] == 2
        assert np.array_equal(state["w"], self.state()["w"])

    def test_overwrite_keeps_latest(self, tmp_path):
        path = str(tmp_path / "server.ckpt")
        save_server_checkpoint(path, {"next_round": 1}, self.state())
        save_server_checkpoint(path, {"next_round": 2}, self.state())
        meta, _ = load_server_checkpoint(path)
        assert meta["next_round"] == 2


class TestCrashResume:
    @pytest.fixture(scope="class")
    def reference(self):
        result, codes = run_tcp_federation(
            asdict(spec()),
            rounds=ROUNDS,
            workers=2,
            trainer={"rho": 0.1},
            seed=0,
            round_timeout_s=60.0,
        )
        assert codes == [0, 0]
        return result

    @pytest.fixture(scope="class")
    def resumed(self, tmp_path_factory):
        """Crash after round 0, resume from the checkpoint on the same port."""
        ckpt = str(tmp_path_factory.mktemp("ckpt") / "server.ckpt")
        config = make_run_config(asdict(spec()), trainer={"rho": 0.1}, heartbeat_s=0.5)

        def make_server(port, **kw):
            return FedTcpServer(
                NUM_CLIENTS,
                ROUNDS,
                config,
                host="127.0.0.1",
                port=port,
                seed=0,
                join_timeout_s=60.0,
                round_timeout_s=60.0,
                rejoin_grace_s=10.0,
                checkpoint_path=ckpt,
                checkpoint_every=1,
                **kw,
            )

        server1 = make_server(0, crash_after_round=0)
        host, port = server1.listen()
        procs = launch_workers(
            host, port, assign_clients(NUM_CLIENTS, 2), common_flags=["--rng-seed", "0"]
        )
        try:
            with pytest.raises(SimulatedCrash):
                server1.run()
            assert os.path.exists(ckpt)
            # same port: the surviving workers are already redialling it
            server2 = make_server(port, resume=ckpt)
            server2.listen()
            result = server2.run()
        finally:
            codes = reap_workers(procs)
        return result, codes

    def test_workers_survive_the_outage(self, resumed):
        _, codes = resumed
        assert codes == [0, 0]

    def test_resumed_run_completes_remaining_rounds(self, reference, resumed):
        result, _ = resumed
        # the checkpoint restores round 0's log entry; rounds 1..N-1 run
        # fresh — each round appears exactly once (nothing is replayed)
        assert [e["round"] for e in result.round_log] == list(range(ROUNDS))
        assert len(result.history.rounds) == len(reference.history.rounds)

    def test_final_global_bit_identical_to_uninterrupted(self, reference, resumed):
        result, _ = resumed
        assert set(result.global_state) == set(reference.global_state)
        for key in reference.global_state:
            a, b = reference.global_state[key], result.global_state[key]
            assert a.dtype == b.dtype and a.shape == b.shape
            assert np.array_equal(a, b), f"{key} diverged across the crash"

    def test_resumed_metrics_match_uninterrupted(self, reference, resumed):
        result, _ = resumed
        for ref_m, m in zip(reference.history.rounds[1:], result.history.rounds[1:]):
            assert m.mean_acc == pytest.approx(ref_m.mean_acc)
            assert m.train_loss == pytest.approx(ref_m.train_loss)

    def test_rejoined_clients_tracked(self, resumed):
        result, _ = resumed
        assert result.permanently_lost == []


class TestServerCrashReapsOrphans:
    def test_mid_round_crash_leaves_no_orphans(self, tmp_path):
        """Satellite: the launcher must reap workers even when the *server*
        dies mid-round (crash_in_round fires between broadcast and collect)."""
        with pytest.raises(SimulatedCrash):
            run_tcp_federation(
                asdict(spec()),
                rounds=3,
                workers=2,
                trainer={"rho": 0.1},
                seed=0,
                round_timeout_s=30.0,
                crash_in_round=1,
                rejoin_grace_s=0.0,
            )
        # run_tcp_federation's finally-reap already waited on both procs;
        # verify no `repro.cli worker` process survived this test's run
        import subprocess
        import sys

        out = subprocess.run(
            ["pgrep", "-f", "repro.cli worker"], capture_output=True, text=True
        )
        live = [p for p in out.stdout.split() if p and int(p) != os.getpid()]
        assert live == [], f"orphaned worker processes: {live}"

"""Wire codec: lossless delta round-trips, lockstep errors, flag fuzz."""

import io
import socket
import struct
import threading
import zlib

import numpy as np
import pytest

from repro.net.encoding import (
    _CONTAINER,
    _MAGIC,
    CodecStats,
    EncodingError,
    WireCodec,
    parse_wire_mode,
    stream_key,
)
from repro.net.protocol import (
    _HEADER,
    FLAG_CODEC,
    FLAG_QUANT8,
    FLAG_QUANT16,
    FLAG_TOPK,
    KNOWN_WIRE_FLAGS,
    MAGIC,
    Message,
    MsgType,
    ProtocolError,
    UnknownWireFlags,
    decode_payload,
    encode_frame_parts,
    encode_message,
    read_frame,
    sendall_parts,
)


def _state(seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return {
        "classifier.weight": rng.normal(size=(16, 10)) * scale,
        "classifier.bias": rng.normal(size=10).astype(np.float32) * scale,
        "steps": np.array(seed, dtype=np.int64),
    }


def _pipe(tx: WireCodec, rx: WireCodec, stream: str, state: dict) -> dict:
    parts, flags = tx.encode_state(stream, state)
    blob = b"".join(parts)
    if flags == 0:
        from repro.utils.serialization import state_dict_from_bytes

        return state_dict_from_bytes(blob)
    # decode under the (msg_type, meta) whose stream_key matches the
    # stream the sender encoded on — exactly what Connection.recv does
    if stream.startswith("update:"):
        mt, meta = MsgType.CLIENT_UPDATE, {"client": int(stream.split(":", 1)[1])}
    else:
        mt, meta = MsgType.CLASSIFIER, {}
    return rx.decode_state(flags, mt, meta, blob)


def assert_states_identical(a: dict, b: dict) -> None:
    assert list(a) == list(b)
    for k in a:
        assert a[k].dtype == b[k].dtype, k
        assert a[k].shape == b[k].shape, k
        assert np.array_equal(a[k], b[k]), k


class TestModeParsing:
    def test_valid_modes(self):
        for mode in ("full", "delta", "delta+quant8", "delta+quant16", "delta+topk0.5"):
            parsed, _, _ = parse_wire_mode(mode)
            assert parsed == mode

    def test_topk_default_ratio(self):
        _, comp, flag = parse_wire_mode("delta+topk")
        assert comp.ratio == 0.25
        assert flag == FLAG_TOPK

    def test_lossy_flags(self):
        assert parse_wire_mode("delta")[2] == 0
        assert parse_wire_mode("delta+quant8")[2] == FLAG_QUANT8
        assert parse_wire_mode("delta+quant16")[2] == FLAG_QUANT16

    def test_junk_mode_raises(self):
        with pytest.raises(ValueError, match="wire mode"):
            parse_wire_mode("zstd")
        with pytest.raises(ValueError, match="ratio"):
            parse_wire_mode("delta+topkx")

    def test_none_is_full(self):
        assert parse_wire_mode(None)[0] == "full"


class TestStreamKeys:
    def test_updates_keyed_per_client(self):
        assert stream_key(MsgType.CLIENT_UPDATE, {"client": 3}) == "update:3"
        assert stream_key(MsgType.CLIENT_UPDATE, {"client": 7}) == "update:7"

    def test_broadcast_shared(self):
        assert stream_key(MsgType.CLASSIFIER, {"client": 3}) == "broadcast"
        assert stream_key(MsgType.CONFIG, {}) == "broadcast"


class TestLosslessDelta:
    def test_full_mode_is_plain_chunks(self):
        codec = WireCodec("full")
        parts, flags = codec.encode_state("broadcast", _state())
        assert flags == 0
        from repro.utils.serialization import state_dict_to_bytes

        assert b"".join(parts) == state_dict_to_bytes(_state())

    def test_first_frame_is_snapshot_then_deltas(self):
        tx, rx = WireCodec("delta"), WireCodec("full")
        for i in range(4):
            out = _pipe(tx, rx, "broadcast", _state(i))
            assert_states_identical(out, _state(i))
        stats = tx.stats.to_dict()
        assert stats["snapshots"] == 1
        assert stats["deltas"] == 3

    def test_repeated_identical_state_collapses(self):
        tx = WireCodec("delta")
        state = _state(1)
        tx.encode_state("broadcast", state)
        parts, _ = tx.encode_state("broadcast", state)
        # the XOR of identical blobs is all zeros — zlib collapses it
        assert len(parts[0]) < 64

    def test_streams_are_independent(self):
        tx, rx = WireCodec("delta"), WireCodec("full")
        a0 = _pipe(tx, rx, "update:0", _state(0))
        b0 = _pipe(tx, rx, "update:1", _state(10))
        a1 = _pipe(tx, rx, "update:0", _state(1))
        b1 = _pipe(tx, rx, "update:1", _state(11))
        assert_states_identical(a0, _state(0))
        assert_states_identical(b0, _state(10))
        assert_states_identical(a1, _state(1))
        assert_states_identical(b1, _state(11))

    def test_shape_change_falls_back_to_snapshot(self):
        tx, rx = WireCodec("delta"), WireCodec("full")
        _pipe(tx, rx, "s", _state(0))
        bigger = {"w": np.ones((64, 64))}
        out = _pipe(tx, rx, "s", bigger)
        assert_states_identical(out, bigger)
        assert tx.stats.to_dict()["snapshots"] == 2

    def test_float_bits_exact_across_magnitudes(self):
        # XOR deltas are bit-exact even across wildly different scales,
        # denormals, and sign flips — no arithmetic is involved
        tx, rx = WireCodec("delta"), WireCodec("full")
        for scale in (1e-300, 1.0, 1e300, -1e-10):
            st = {"w": np.array([scale, -scale, 0.0, np.pi * scale])}
            out = _pipe(tx, rx, "s", st)
            assert out["w"].tobytes() == st["w"].tobytes()


class TestLossyModes:
    @pytest.mark.parametrize(
        "mode,flag",
        [
            ("delta+quant8", FLAG_QUANT8),
            ("delta+quant16", FLAG_QUANT16),
            ("delta+topk0.5", FLAG_TOPK),
        ],
    )
    def test_flags_carried_and_decoded(self, mode, flag):
        tx, rx = WireCodec(mode), WireCodec("full")
        parts, flags = tx.encode_state("s", _state())
        assert flags & FLAG_CODEC and flags & flag
        out = rx.decode_state(flags, MsgType.CLASSIFIER, {}, b"".join(parts))
        assert list(out) == list(_state())
        for k, v in _state().items():
            assert out[k].dtype == v.dtype
            assert out[k].shape == v.shape

    def test_lossy_deltas_stay_decodable_across_rounds(self):
        tx, rx = WireCodec("delta+quant8"), WireCodec("delta")
        for i in range(3):
            parts, flags = tx.encode_state("s", _state(i))
            out = rx.decode_state(flags, MsgType.CLASSIFIER, {}, b"".join(parts))
            assert list(out) == list(_state(i))


class TestLockstepErrors:
    def test_delta_without_base_raises(self):
        tx = WireCodec("delta")
        tx.encode_state("s", _state(0))
        parts, flags = tx.encode_state("s", _state(1))  # a delta frame
        fresh = WireCodec("full")
        with pytest.raises(EncodingError, match="lockstep"):
            fresh.decode_state(flags, MsgType.CLASSIFIER, {}, b"".join(parts))

    def test_wrong_base_crc_raises(self):
        tx, rx = WireCodec("delta"), WireCodec("full")
        _pipe(tx, rx, "s", _state(0))
        # poison the receiver's base for the stream (same length)
        rx._rx["broadcast"] = bytes(len(rx._rx["broadcast"]))
        parts, flags = tx.encode_state("s", _state(1))
        with pytest.raises(EncodingError, match="CRC"):
            rx.decode_state(flags, MsgType.CLASSIFIER, {}, b"".join(parts))

    def test_truncated_container_raises(self):
        with pytest.raises(EncodingError, match="truncated"):
            WireCodec("full").decode_state(FLAG_CODEC, MsgType.CLASSIFIER, {}, b"RPC1")

    def test_bad_container_magic_raises(self):
        blob = b"XXXX" + b"\x00" * (_CONTAINER.size - 4) + zlib.compress(b"")
        with pytest.raises(EncodingError, match="magic"):
            WireCodec("full").decode_state(FLAG_CODEC, MsgType.CLASSIFIER, {}, blob)

    def test_unknown_kind_raises(self):
        blob = _CONTAINER.pack(_MAGIC, 9, 0, 0, 0) + zlib.compress(b"")
        with pytest.raises(EncodingError, match="kind"):
            WireCodec("full").decode_state(FLAG_CODEC, MsgType.CLASSIFIER, {}, blob)

    def test_corrupt_zlib_body_raises(self):
        blob = _CONTAINER.pack(_MAGIC, 0, 0, 0, 4) + b"\xff\xfe\xfd"
        with pytest.raises(EncodingError, match="corrupt"):
            WireCodec("full").decode_state(FLAG_CODEC, MsgType.CLASSIFIER, {}, blob)

    def test_raw_length_mismatch_raises(self):
        blob = _CONTAINER.pack(_MAGIC, 0, 0, 0, 99) + zlib.compress(b"abc")
        with pytest.raises(EncodingError, match="raw bytes"):
            WireCodec("full").decode_state(FLAG_CODEC, MsgType.CLASSIFIER, {}, blob)

    def test_non_codec_flags_rejected(self):
        with pytest.raises(EncodingError, match="non-codec"):
            WireCodec("full").decode_state(0, MsgType.CLASSIFIER, {}, b"x")


class TestFrameFlagFuzz:
    """Unknown header flag bits must fail loudly, never silently misdecode."""

    def _frame_with_flags(self, flags: int) -> bytes:
        msg = Message(MsgType.CLASSIFIER, {"round": 0})
        frame = bytearray(encode_message(msg))
        magic, ver, mtype, _, length, crc = _HEADER.unpack_from(frame)
        frame[: _HEADER.size] = _HEADER.pack(magic, ver, mtype, flags, length, crc)
        return bytes(frame)

    def test_every_unknown_single_bit_is_typed(self):
        for bit in range(16):
            flag = 1 << bit
            if flag & KNOWN_WIRE_FLAGS:
                continue
            with pytest.raises(UnknownWireFlags):
                read_frame(io.BytesIO(self._frame_with_flags(flag)))

    def test_unknown_bit_alongside_known_still_rejected(self):
        with pytest.raises(UnknownWireFlags):
            read_frame(io.BytesIO(self._frame_with_flags(FLAG_CODEC | 0x8000)))

    def test_unknown_flags_are_protocol_errors(self):
        assert issubclass(UnknownWireFlags, ProtocolError)
        assert issubclass(EncodingError, ProtocolError)

    def test_codec_flag_without_decoder_is_typed(self):
        tx = WireCodec("delta")
        parts, flags = tx.encode_state("broadcast", _state())
        frame = b"".join(
            encode_frame_parts(MsgType.CLASSIFIER, {"round": 0}, parts, flags)
        )
        # a peer with no codec configured must refuse, not misdecode
        with pytest.raises(ProtocolError, match="no wire codec"):
            read_frame(io.BytesIO(frame))

    def test_encode_refuses_unknown_flags(self):
        with pytest.raises(UnknownWireFlags):
            encode_frame_parts(MsgType.CLASSIFIER, {}, [], flags=0x4000)

    def test_decode_payload_rejects_unknown_flags(self):
        with pytest.raises(UnknownWireFlags):
            decode_payload(int(MsgType.CLASSIFIER), b"\x02\x00\x00\x00{}", flags=0x0100)

    def test_pre_flags_peer_fails_loudly_on_container(self):
        # a peer that ignored the (formerly reserved) flag bytes would
        # feed the codec container to the plain state parser — which
        # rejects the non-RPSD magic instead of misreading floats
        tx = WireCodec("delta")
        parts, _ = tx.encode_state("broadcast", _state())
        from repro.utils.serialization import state_dict_from_bytes

        with pytest.raises(ValueError, match="magic"):
            state_dict_from_bytes(b"".join(parts))


class TestZeroCopySend:
    def test_sendall_parts_matches_join(self):
        from repro.utils.serialization import state_dict_to_chunks

        parts = encode_frame_parts(
            MsgType.CLIENT_UPDATE, {"client": 0}, state_dict_to_chunks(_state())
        )
        expected = b"".join(bytes(p) for p in parts)
        a, b = socket.socketpair()
        try:
            got = bytearray()

            def _drain():
                while True:
                    chunk = a.recv(65536)
                    if not chunk:
                        return
                    got.extend(chunk)

            t = threading.Thread(target=_drain, daemon=True)
            t.start()
            n = sendall_parts(b, parts)
            b.close()
            t.join(timeout=5)
            assert n == len(expected)
            assert bytes(got) == expected
        finally:
            a.close()

    def test_stats_accumulate(self):
        stats = CodecStats()
        tx = WireCodec("delta", stats)
        for i in range(3):
            tx.encode_state("s", _state(i))
        d = stats.to_dict()
        assert d["frames_encoded"] == 3
        assert d["raw_bytes"] > d["wire_bytes"] > 0
        assert d["encode_s"] >= 0.0

"""Wire protocol: framing round-trips and corrupt-input rejection."""

import io
import struct
import zlib

import numpy as np
import pytest

from repro.net.protocol import (
    _HEADER,
    MAGIC,
    BadMagic,
    ChecksumMismatch,
    ConnectionClosed,
    FrameTooLarge,
    Message,
    MsgType,
    ProtocolError,
    Truncated,
    VersionMismatch,
    decode_payload,
    encode_message,
    read_frame,
    write_frame,
)


def roundtrip(msg: Message, max_frame: int | None = None) -> Message:
    frame = encode_message(msg) if max_frame is None else encode_message(msg, max_frame)
    return read_frame(io.BytesIO(frame))


class TestRoundtrip:
    def test_meta_only(self):
        back = roundtrip(Message(MsgType.ROUND_START, {"round": 3, "sampled": [0, 2]}))
        assert back.type is MsgType.ROUND_START
        assert back.meta == {"round": 3, "sampled": [0, 2]}
        assert back.state is None

    def test_with_state(self):
        state = {
            "w": np.random.default_rng(0).normal(size=(4, 3)),
            "b": np.arange(3, dtype=np.int64),
        }
        back = roundtrip(Message(MsgType.CLIENT_UPDATE, {"client": 1}, state))
        assert back.meta == {"client": 1}
        assert set(back.state) == {"w", "b"}
        assert np.array_equal(back.state["w"], state["w"])
        assert back.state["w"].dtype == np.float64  # full precision crosses the wire

    def test_empty_meta(self):
        back = roundtrip(Message(MsgType.HEARTBEAT))
        assert back.type is MsgType.HEARTBEAT
        assert back.meta == {}

    def test_every_msg_type(self):
        for mtype in MsgType:
            assert roundtrip(Message(mtype, {"t": int(mtype)})).type is mtype

    def test_multiple_frames_in_stream(self):
        buf = io.BytesIO()
        write_frame(buf, Message(MsgType.HELLO, {"client_ids": [0]}))
        write_frame(buf, Message(MsgType.BYE))
        buf.seek(0)
        assert read_frame(buf).type is MsgType.HELLO
        assert read_frame(buf).type is MsgType.BYE


class TestCorruptInput:
    def frame(self, msg=None) -> bytearray:
        return bytearray(encode_message(msg or Message(MsgType.CONFIG, {"a": 1})))

    def test_bad_magic(self):
        frame = self.frame()
        frame[0:4] = b"EVIL"
        with pytest.raises(BadMagic):
            read_frame(io.BytesIO(bytes(frame)))

    def test_version_mismatch(self):
        frame = self.frame()
        frame[4] = 99
        with pytest.raises(VersionMismatch):
            read_frame(io.BytesIO(bytes(frame)))

    def test_payload_bit_flip_fails_crc(self):
        frame = self.frame()
        frame[-1] ^= 0x40
        with pytest.raises(ChecksumMismatch):
            read_frame(io.BytesIO(bytes(frame)))

    def test_truncated_mid_payload(self):
        frame = self.frame()
        with pytest.raises(Truncated):
            read_frame(io.BytesIO(bytes(frame[:-3])))

    def test_truncated_mid_header(self):
        frame = self.frame()
        with pytest.raises(Truncated):
            read_frame(io.BytesIO(bytes(frame[:5])))

    def test_clean_eof_between_frames(self):
        with pytest.raises(ConnectionClosed):
            read_frame(io.BytesIO(b""))

    def test_oversized_declared_length(self):
        header = _HEADER.pack(MAGIC, 1, int(MsgType.CONFIG), 0, 2**31, 0)
        with pytest.raises(FrameTooLarge):
            read_frame(io.BytesIO(header))

    def test_encode_rejects_oversized_payload(self):
        big = {"w": np.zeros(4096, dtype=np.float64)}
        with pytest.raises(FrameTooLarge):
            encode_message(Message(MsgType.CLASSIFIER, {}, big), max_frame=1024)

    def test_unknown_msg_type(self):
        payload = struct.pack("<I", 2) + b"{}"
        with pytest.raises(ProtocolError):
            decode_payload(200, payload)

    def test_meta_length_overrun(self):
        payload = struct.pack("<I", 9999) + b"{}"
        with pytest.raises(Truncated):
            decode_payload(int(MsgType.CONFIG), payload)

    def test_meta_must_be_object(self):
        meta = b"[1,2]"
        payload = struct.pack("<I", len(meta)) + meta
        with pytest.raises(ProtocolError):
            decode_payload(int(MsgType.CONFIG), payload)

    def test_garbage_meta_json(self):
        meta = b"{oops"
        payload = struct.pack("<I", len(meta)) + meta
        with pytest.raises(ProtocolError):
            decode_payload(int(MsgType.CONFIG), payload)

    def test_every_truncation_point_is_typed(self):
        """Any prefix of a valid frame must raise a ProtocolError subclass
        (or ConnectionClosed for the empty prefix) — never struct.error."""
        frame = bytes(self.frame(Message(MsgType.CLASSIFIER, {"r": 1}, {"w": np.ones(3)})))
        for cut in range(len(frame)):
            with pytest.raises((ProtocolError, ConnectionClosed)):
                read_frame(io.BytesIO(frame[:cut]))

    def test_corrupt_state_blob_is_protocol_error(self):
        """CRC-valid frame with a corrupt state blob → ValueError, not crash."""
        meta = b"{}"
        payload = struct.pack("<I", len(meta)) + meta + b"SDCT-junk-blob"
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        header = _HEADER.pack(MAGIC, 1, int(MsgType.CLIENT_UPDATE), 0, len(payload), crc)
        with pytest.raises(ValueError):
            read_frame(io.BytesIO(header + payload))


class TestTracedFlag:
    """FLAG_TRACED rides the header without touching state decoding."""

    def test_traced_meta_only_roundtrip(self):
        from repro.net.protocol import FLAG_TRACED

        frame = encode_message(
            Message(MsgType.ROUND_START, {"round": 1, "_trace": {"id": "t", "span": 7}}),
            flags=FLAG_TRACED,
        )
        back = read_frame(io.BytesIO(frame))
        assert back.meta["_trace"] == {"id": "t", "span": 7}

    def test_traced_plain_state_decodes_without_codec(self):
        # regression: a traced frame whose state blob is the *plain* RPSD
        # format must route to the plain decoder, not demand a codec
        from repro.net.protocol import FLAG_TRACED

        state = {"w": np.arange(6, dtype=np.float64).reshape(2, 3)}
        frame = encode_message(
            Message(MsgType.CLASSIFIER, {"round": 0, "_trace": {"id": "t"}}, state),
            flags=FLAG_TRACED,
        )
        back = read_frame(io.BytesIO(frame))  # no state_decoder passed
        assert np.array_equal(back.state["w"], state["w"])

    def test_traced_codec_state_still_reaches_decoder(self):
        from repro.net.protocol import FLAG_CODEC, FLAG_TRACED, STATE_ENC_FLAGS

        seen = {}

        def decoder(flags, mtype, meta, blob):
            seen["flags"] = flags
            return {"ok": np.zeros(1)}

        frame = encode_message(
            Message(MsgType.CLASSIFIER, {}, None),
            flags=FLAG_CODEC | FLAG_TRACED,
            state_parts=[b"container"],
        )
        back = read_frame(io.BytesIO(frame), state_decoder=decoder)
        # the decoder sees only the state-encoding bits, never FLAG_TRACED
        assert seen["flags"] == FLAG_CODEC
        assert seen["flags"] & ~STATE_ENC_FLAGS == 0
        assert "ok" in back.state

    def test_pre_tracing_peer_rejects_unknown_bits_loudly(self):
        # the next unassigned flag bit must fail the handshake, not be
        # silently dropped — that is the negotiation contract FLAG_TRACED
        # itself relied on when it was introduced
        from repro.net.protocol import KNOWN_WIRE_FLAGS, UnknownWireFlags

        unknown = (KNOWN_WIRE_FLAGS + 1) & ~KNOWN_WIRE_FLAGS
        with pytest.raises(UnknownWireFlags):
            encode_message(Message(MsgType.HEARTBEAT), flags=unknown)
        good = encode_message(Message(MsgType.HEARTBEAT))
        magic, version, msg_type, flags, length, crc = _HEADER.unpack(
            good[: _HEADER.size]
        )
        bad = _HEADER.pack(magic, version, msg_type, flags | unknown, length, crc)
        with pytest.raises(UnknownWireFlags):
            read_frame(io.BytesIO(bad + good[_HEADER.size :]))

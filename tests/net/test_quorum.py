"""Quorum policies: participation math, and e2e skip/abort behavior.

The e2e runs kill worker 1 (which owns client 1) at round 1 with no
supervision and no rejoin grace, so rounds 1+ can never reach a
``min_fraction=1.0`` quorum.  ``skip_round`` must freeze the global
classifier at its round-0 value; ``abort`` must raise
:class:`QuorumError` and still reap every worker process.
"""

import os
import subprocess
from dataclasses import asdict

import numpy as np
import pytest

from repro import telemetry
from repro.federated import FederationSpec, default_firewall
from repro.net.launcher import run_tcp_federation
from repro.net.server import FedTcpServer, QuorumError, QuorumPolicy

NUM_CLIENTS = 3


def spec() -> FederationSpec:
    return FederationSpec(
        dataset="fashion_mnist-tiny",
        num_clients=NUM_CLIENTS,
        partition="dirichlet",
        n_train=120,
        n_test=90,
        test_per_client=15,
        batch_size=16,
        lr=3e-3,
        seed=0,
    )


class TestQuorumPolicy:
    def test_default_matches_pre_quorum_behavior(self):
        p = QuorumPolicy()
        assert p.required(10) == 1
        assert p.required(1) == 1

    def test_fraction_rounds_up(self):
        p = QuorumPolicy(min_fraction=0.5)
        assert p.required(3) == 2  # ceil(1.5)
        assert p.required(4) == 2
        assert p.required(5) == 3

    def test_count_floor_wins_over_small_fractions(self):
        p = QuorumPolicy(min_fraction=0.1, min_count=3)
        assert p.required(10) == 3
        assert p.required(100) == 10  # ceil(0.1 * 100) beats the floor

    def test_full_quorum(self):
        assert QuorumPolicy(min_fraction=1.0).required(7) == 7

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_fraction": -0.1},
            {"min_fraction": 1.5},
            {"min_count": -1},
            {"on_miss": "retry_forever"},
            {"max_extensions": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QuorumPolicy(**kwargs)


def _ref_state(value=1.0):
    return {"w": np.full((2, 2), value, dtype=np.float64)}


def _quorum_server(policy):
    """A FedTcpServer for unit-testing ``_apply_quorum`` — the transport
    is constructed but never bound, so no socket is involved."""
    server = FedTcpServer(5, 1, {}, quorum=policy, firewall=default_firewall())
    server.global_state = _ref_state()
    return server


def _screened(server, t, updates):
    """Mimic ``_run_rounds``: screen arrivals, hand survivors to quorum."""
    from repro.federated import screen_updates

    arrived = set(updates)
    admitted_states, rejected = screen_updates(
        t, {k: s for k, (_m, s) in updates.items()}, server.firewall, server.global_state
    )
    admitted = {k: updates[k] for k in admitted_states}
    return admitted, arrived, rejected


class TestQuorumCountsAdmittedOnly:
    """Five uploads arrive, three are quarantined: participation is 2,
    not 5 — every ``on_miss`` mode must treat that as a quorum miss."""

    def _updates(self):
        meta = {"loss": 0.5}
        good = {k: (meta, _ref_state(1.0 + 0.01 * k)) for k in (0, 1)}
        bad = {k: (meta, _ref_state(np.nan)) for k in (2, 3, 4)}
        return {**good, **bad}

    def test_rejections_do_not_count_toward_quorum_skip(self):
        server = _quorum_server(QuorumPolicy(min_count=4, on_miss="skip_round"))
        admitted, arrived, rejected = _screened(server, 0, self._updates())
        assert sorted(admitted) == [0, 1]
        assert [r["client"] for r in rejected] == [2, 3, 4]
        result, skipped = server._apply_quorum(0, list(range(5)), admitted, arrived, rejected)
        assert skipped is True  # 2 admitted < 4 required despite 5 arrivals

    def test_quorum_met_by_admitted_updates_alone(self):
        server = _quorum_server(QuorumPolicy(min_count=2, on_miss="skip_round"))
        admitted, arrived, rejected = _screened(server, 0, self._updates())
        result, skipped = server._apply_quorum(0, list(range(5)), admitted, arrived, rejected)
        assert skipped is False
        assert sorted(result) == [0, 1]

    def test_abort_mode_raises_on_rejection_shortfall(self):
        server = _quorum_server(QuorumPolicy(min_count=4, on_miss="abort"))
        admitted, arrived, rejected = _screened(server, 0, self._updates())
        with pytest.raises(QuorumError, match="quorum requires 4"):
            server._apply_quorum(0, list(range(5)), admitted, arrived, rejected)

    def test_extend_mode_does_not_wait_when_everyone_arrived(self):
        # all five arrived; the shortfall is rejections, so extending the
        # deadline cannot help — _apply_quorum must not call the transport
        server = _quorum_server(
            QuorumPolicy(min_count=4, on_miss="extend_deadline", max_extensions=3)
        )

        def boom(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("extension must not re-collect when nothing is missing")

        server.transport.collect_updates = boom
        admitted, arrived, rejected = _screened(server, 0, self._updates())
        result, skipped = server._apply_quorum(0, list(range(5)), admitted, arrived, rejected)
        assert skipped is True

    def test_extension_arrivals_are_rescreened(self):
        # client 3 never arrived; during the extension it sends a NaN bomb
        # which must be screened out, leaving the quorum still missed
        server = _quorum_server(
            QuorumPolicy(min_count=3, on_miss="extend_deadline", max_extensions=1)
        )
        updates = {k: ({"loss": 0.5}, _ref_state(1.0 + 0.01 * k)) for k in (0, 1)}
        calls = []

        def late_nan(t, missing, deadline):
            calls.append(sorted(missing))
            return {3: ({"loss": 9.0}, _ref_state(np.nan))}

        server.transport.collect_updates = late_nan
        admitted, arrived, rejected = _screened(server, 0, updates)
        result, skipped = server._apply_quorum(0, [0, 1, 3], admitted, arrived, rejected)
        assert calls == [[3]]  # only the truly-missing client was re-waited
        assert skipped is True  # late NaN was rejected, quorum still short
        assert sorted(result) == [0, 1]
        assert [r["client"] for r in rejected] == [3]


def _run(policy, tmp_path, tag):
    tel = telemetry.configure(jsonl=str(tmp_path / f"{tag}.jsonl"))
    try:
        result, codes = run_tcp_federation(
            asdict(spec()),
            rounds=3,
            workers=2,
            trainer={"rho": 0.1},
            seed=0,
            round_timeout_s=30.0,
            liveness_timeout_s=3.0,
            heartbeat_s=0.3,
            chaos={1: ["--die-at-round", "1"]},  # worker 1 owns client 1
            quorum=policy,
            rejoin_grace_s=0.0,
        )
        counters = {
            name: telemetry.counter(name).value
            for name in ("net.quorum_misses", "net.rounds_skipped")
        }
        alerts = list(tel.health.alerts)
    finally:
        tel.close()
        telemetry.disable()
    return result, codes, counters, alerts


class TestQuorumSkipRound:
    @pytest.fixture(scope="class")
    def skip_run(self, tmp_path_factory):
        policy = QuorumPolicy(min_fraction=1.0, on_miss="skip_round")
        reference, ref_codes = run_tcp_federation(
            asdict(spec()), rounds=1, workers=2, trainer={"rho": 0.1}, seed=0
        )
        assert ref_codes == [0, 0]
        tmp = tmp_path_factory.mktemp("quorum")
        return reference, _run(policy, tmp, "skip")

    def test_rounds_after_the_death_are_skipped(self, skip_run):
        _, (result, _, _, _) = skip_run
        assert [e["skipped"] for e in result.round_log] == [False, True, True]

    def test_skipped_rounds_freeze_the_global_classifier(self, skip_run):
        reference, (result, _, _, _) = skip_run
        # rounds 1 and 2 were skipped: the final global must be
        # bit-identical to a clean run that stopped after round 0
        assert set(result.global_state) == set(reference.global_state)
        for key in reference.global_state:
            assert np.array_equal(
                result.global_state[key], reference.global_state[key]
            ), f"{key} changed despite every later round being skipped"

    def test_misses_counted_and_alerted(self, skip_run):
        _, (_, _, counters, alerts) = skip_run
        assert counters["net.quorum_misses"] == 2
        assert counters["net.rounds_skipped"] == 2
        misses = [a for a in alerts if a["detector"] == "quorum_miss"]
        assert [a["round"] for a in misses] == [1, 2]
        assert all(a["severity"] == "warning" for a in misses)

    def test_lost_client_recorded(self, skip_run):
        _, (result, _, _, _) = skip_run
        assert result.permanently_lost == [1]


class TestQuorumAbort:
    def test_abort_raises_and_reaps(self, tmp_path):
        policy = QuorumPolicy(min_fraction=1.0, on_miss="abort")
        with pytest.raises(QuorumError, match="quorum requires 3"):
            _run(policy, tmp_path, "abort")
        out = subprocess.run(
            ["pgrep", "-f", "repro.cli worker"], capture_output=True, text=True
        )
        live = [p for p in out.stdout.split() if p and int(p) != os.getpid()]
        assert live == [], f"orphaned worker processes: {live}"

"""Retry policies, backoff schedules, deadlines, heartbeats."""

import threading
import time

import numpy as np
import pytest

from repro.net.retry import (
    Deadline,
    Heartbeat,
    RetryPolicy,
    backoff_delays,
    call_with_retries,
)


class TestPolicy:
    def test_defaults_valid(self):
        p = RetryPolicy()
        assert p.attempts >= 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestBackoff:
    def test_count_is_attempts_minus_one(self):
        p = RetryPolicy(attempts=5, jitter=0.0)
        assert len(list(backoff_delays(p))) == 4

    def test_exponential_and_capped(self):
        p = RetryPolicy(
            attempts=6, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.4, jitter=0.0
        )
        assert list(backoff_delays(p)) == pytest.approx([0.1, 0.2, 0.4, 0.4, 0.4])

    def test_jitter_stays_in_band(self):
        p = RetryPolicy(attempts=50, base_delay_s=1.0, multiplier=1.0, jitter=0.25)
        delays = list(backoff_delays(p, np.random.default_rng(0)))
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert len(set(delays)) > 1  # actually jittered

    def test_seeded_rng_reproduces_the_schedule(self):
        # workers seed their retry rng from --rng-seed so a chaos run's
        # backoff sequence (and hence its whole timeline) is replayable
        p = RetryPolicy(attempts=8, base_delay_s=0.1, jitter=0.25)
        a = list(backoff_delays(p, np.random.default_rng(42)))
        b = list(backoff_delays(p, np.random.default_rng(42)))
        c = list(backoff_delays(p, np.random.default_rng(43)))
        assert a == b
        assert a != c

    def test_seeded_rng_flows_through_call_with_retries(self):
        p = RetryPolicy(attempts=4, base_delay_s=0.001, jitter=0.25)

        def schedule(seed):
            seen = []

            def dead():
                raise ConnectionRefusedError("nope")

            with pytest.raises(ConnectionError):
                call_with_retries(
                    dead,
                    p,
                    rng=np.random.default_rng(seed),
                    on_retry=lambda a, e, d: seen.append(d),
                )
            return seen

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)


class TestCallWithRetries:
    def policy(self, attempts=3):
        return RetryPolicy(attempts=attempts, base_delay_s=0.001, jitter=0.0)

    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ConnectionRefusedError("not up yet")
            return "ok"

        assert call_with_retries(flaky, self.policy()) == "ok"
        assert len(calls) == 3

    def test_raises_connection_error_when_budget_spent(self):
        def dead():
            raise ConnectionRefusedError("nope")

        with pytest.raises(ConnectionError, match="3 attempt"):
            call_with_retries(dead, self.policy(3), describe="dial")

    def test_chains_last_error(self):
        def dead():
            raise ConnectionResetError("boom")

        with pytest.raises(ConnectionError) as info:
            call_with_retries(dead, self.policy(2))
        assert isinstance(info.value.__cause__, ConnectionResetError)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def typo():
            calls.append(1)
            raise KeyError("not an OSError")

        with pytest.raises(KeyError):
            call_with_retries(typo, self.policy())
        assert len(calls) == 1

    def test_on_retry_callback(self):
        seen = []

        def dead():
            raise TimeoutError("slow")

        with pytest.raises(ConnectionError):
            call_with_retries(
                dead, self.policy(3), on_retry=lambda a, e, d: seen.append((a, d))
            )
        assert [a for a, _ in seen] == [0, 1]


class TestDeadline:
    def test_counts_down(self):
        d = Deadline(10.0)
        assert 9.0 < d.remaining() <= 10.0
        assert not d.expired

    def test_expires_and_clamps(self):
        d = Deadline(0.0)
        assert d.expired
        assert d.remaining() == 0.0


class TestHeartbeat:
    def test_beats_until_stopped(self):
        beats = threading.Event()
        hb = Heartbeat(beats.set, interval_s=0.01)
        hb.start()
        assert beats.wait(2.0)
        hb.stop()
        hb.join(2.0)
        assert not hb.is_alive()

    def test_beat_failure_stops_quietly(self):
        def broken():
            raise BrokenPipeError("socket gone")

        hb = Heartbeat(broken, interval_s=0.01)
        hb.start()
        hb.join(2.0)
        assert not hb.is_alive()

    def test_stop_before_first_beat(self):
        count = []
        hb = Heartbeat(lambda: count.append(1), interval_s=5.0)
        hb.start()
        hb.stop()
        hb.join(2.0)
        assert count == [] and not hb.is_alive()

    def test_skips_beats_while_connection_is_active(self):
        """Round traffic proves liveness — no beats while frames flow."""
        sent = []
        last_tx = [time.monotonic()]
        hb = Heartbeat(
            lambda: sent.append(1), interval_s=0.02, activity=lambda: last_tx[0]
        )
        hb.start()
        deadline = time.monotonic() + 0.3
        while time.monotonic() < deadline:
            last_tx[0] = time.monotonic()  # keep the link looking busy
            time.sleep(0.005)
        assert sent == []
        assert hb.beats_skipped > 0
        # once the link goes silent for a full interval, beating resumes
        beat_deadline = time.monotonic() + 2.0
        while not sent and time.monotonic() < beat_deadline:
            time.sleep(0.01)
        hb.stop()
        hb.join(2.0)
        assert sent, "expected beats to resume after the link went quiet"

    def test_note_echo_records_rtt_and_offset(self):
        hb = Heartbeat(lambda: None, interval_s=5.0)
        assert hb.echoes == 0
        assert hb.last_rtt_s is None and hb.last_offset_s is None
        hb.note_echo(rtt_s=0.0012, offset_s=-0.0003)
        hb.note_echo(rtt_s=0.0040, offset_s=0.0001)
        assert hb.echoes == 2
        assert hb.last_rtt_s == pytest.approx(0.0040)
        assert hb.last_offset_s == pytest.approx(0.0001)

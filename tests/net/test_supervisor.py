"""Worker supervision: bounded respawn, and end-to-end rejoin recovery.

The unit tests drive the supervisor with throwaway ``python -c``
processes; the e2e test is the tentpole acceptance check — kill a worker
mid-round, watch the supervisor respawn it with ``--rejoin``, and
require that the round completes with *zero permanently lost clients*.
"""

import subprocess
import sys
import time
from dataclasses import asdict

import pytest

from repro import telemetry
from repro.federated import FederationSpec
from repro.net.launcher import run_tcp_federation
from repro.net.retry import RetryPolicy
from repro.net.supervisor import WorkerSupervisor

FAST = RetryPolicy(attempts=4, base_delay_s=0.01, max_delay_s=0.05)


def _proc(code: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-c", code],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestSupervisorUnit:
    def test_clean_exit_is_not_respawned(self):
        sup = WorkerSupervisor(max_restarts=3, policy=FAST, seed=0, poll_interval_s=0.02)
        sup.watch(_proc("pass"), [sys.executable, "-c", "pass"])
        sup.start()
        assert _wait_for(lambda: sup._slots[0].done)
        assert sup.restarts == [0]
        assert sup.stop() == [0]

    def test_crash_respawns_up_to_budget(self):
        sup = WorkerSupervisor(max_restarts=2, policy=FAST, seed=0, poll_interval_s=0.02)
        sup.watch(_proc("raise SystemExit(3)"), [sys.executable, "-c", "raise SystemExit(3)"])
        sup.start()
        # every respawn exits 3 again, so the budget must drain completely
        assert _wait_for(lambda: sup._slots[0].done)
        assert sup.restarts == [2]
        assert sup.stop() == [3]

    def test_respawn_callback_and_counter(self, tmp_path):
        tel = telemetry.configure(jsonl=str(tmp_path / "t.jsonl"))
        try:
            seen = []
            sup = WorkerSupervisor(
                max_restarts=1,
                policy=FAST,
                seed=0,
                poll_interval_s=0.02,
                on_respawn=lambda i, n, p: seen.append((i, n)),
            )
            sup.watch(_proc("raise SystemExit(1)"), [sys.executable, "-c", "pass"])
            sup.start()
            assert _wait_for(lambda: sup._slots[0].done)
            sup.stop()
            assert seen == [(0, 1)]
            assert telemetry.counter("net.worker_restarts").value == 1
        finally:
            tel.close()
            telemetry.disable()

    def test_stop_reaps_long_runner(self):
        sup = WorkerSupervisor(max_restarts=0, policy=FAST, poll_interval_s=0.02)
        sup.watch(_proc("import time; time.sleep(600)"), [sys.executable, "-c", "pass"])
        sup.start()
        codes = sup.stop(timeout_s=0.2)
        assert len(codes) == 1 and codes[0] != 0  # terminated, not still running

    def test_seeded_backoff_is_reproducible(self):
        def delays(seed):
            sup = WorkerSupervisor(max_restarts=3, policy=FAST, seed=seed)
            return list(sup._slot_delays(0))

        assert delays(7) == delays(7)
        assert delays(7) != delays(8)

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            WorkerSupervisor(max_restarts=-1)


class TestSupervisedRejoin:
    """Kill worker 1 at round 1; the supervisor must bring its client back."""

    @pytest.fixture(scope="class")
    def rejoin_run(self, tmp_path_factory):
        spec = FederationSpec(
            dataset="fashion_mnist-tiny",
            num_clients=3,
            partition="dirichlet",
            n_train=120,
            n_test=90,
            test_per_client=15,
            batch_size=16,
            lr=3e-3,
            seed=0,
        )
        path = tmp_path_factory.mktemp("tel") / "rejoin.jsonl"
        tel = telemetry.configure(jsonl=str(path))
        try:
            result, codes = run_tcp_federation(
                asdict(spec),
                rounds=3,
                workers=2,
                trainer={"rho": 0.1},
                seed=0,
                round_timeout_s=60.0,
                liveness_timeout_s=3.0,
                heartbeat_s=0.3,
                chaos={1: ["--die-at-round", "1"]},  # worker 1 owns client 1
                supervise=True,
            )
            alerts = list(tel.health.alerts)
        finally:
            tel.close()
            telemetry.disable()
        return result, codes, alerts

    def test_no_permanently_lost_clients(self, rejoin_run):
        result, _, _ = rejoin_run
        assert result.permanently_lost == []

    def test_client_recovered(self, rejoin_run):
        result, _, _ = rejoin_run
        assert [e["client"] for e in result.lost_clients] == [1]
        assert [e["client"] for e in result.recovered_clients] == [1]

    def test_recovered_alert_emitted(self, rejoin_run):
        _, _, alerts = rejoin_run
        recovered = [a for a in alerts if a["detector"] == "client_recovered"]
        assert [a["client"] for a in recovered] == [1]
        assert all(a["severity"] == "info" for a in recovered)

    def test_rejoined_client_participates_again(self, rejoin_run):
        result, _, _ = rejoin_run
        # client 1 was SIGKILLed mid-round-1, yet the grace window +
        # respawn mean every round after the recovery round (often round
        # 1 itself) aggregates it again
        recovered_at = result.recovered_clients[0]["round"]
        for entry in result.round_log:
            if entry["round"] > recovered_at:
                assert 1 in entry["survivors"], f"round {entry['round']} missing client 1"

    def test_final_round_aggregates_everyone(self, rejoin_run):
        result, _, _ = rejoin_run
        assert result.round_log[-1]["survivors"] == [0, 1, 2]

"""TCP runtime end-to-end: bit-identity vs SimComm, fault paths, accounting.

These spawn real worker OS processes (several seconds each).  The scale
is the smallest federation that still exercises multi-client workers:
3 clients on 2 workers — worker 0 owns clients {0, 2}, worker 1 owns {1}.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro import telemetry
from repro.core import FedClassAvg
from repro.federated import FederationSpec, build_federation
from repro.net.launcher import assign_clients, run_tcp_federation

ROUNDS = 2
NUM_CLIENTS = 3


def spec() -> FederationSpec:
    return FederationSpec(
        dataset="fashion_mnist-tiny",
        num_clients=NUM_CLIENTS,
        partition="dirichlet",
        n_train=120,
        n_test=90,
        test_per_client=15,
        batch_size=16,
        lr=3e-3,
        seed=0,
    )


@pytest.fixture(scope="module")
def sim_run():
    """Reference in-process run: (history, global_state)."""
    clients, _ = build_federation(spec())
    algo = FedClassAvg(clients, rho=0.1, sample_rate=1.0, local_epochs=1, seed=0)
    history = algo.run(ROUNDS)
    return history, algo.global_state


@pytest.fixture(scope="module")
def tcp_run():
    result, codes = run_tcp_federation(
        asdict(spec()),
        rounds=ROUNDS,
        workers=2,
        trainer={"rho": 0.1},
        seed=0,
        round_timeout_s=60.0,
    )
    return result, codes


class TestAssignment:
    def test_round_robin(self):
        assert assign_clients(5, 2) == [[0, 2, 4], [1, 3]]

    def test_more_workers_than_clients(self):
        assert assign_clients(2, 4) == [[0], [1]]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            assign_clients(4, 0)


class TestBitIdentity:
    def test_workers_exit_cleanly(self, tcp_run):
        _, codes = tcp_run
        assert codes == [0, 0]

    def test_global_classifier_bit_identical(self, sim_run, tcp_run):
        _, sim_state = sim_run
        result, _ = tcp_run
        assert set(result.global_state) == set(sim_state)
        for key in sim_state:
            a, b = sim_state[key], result.global_state[key]
            assert a.dtype == b.dtype and a.shape == b.shape
            assert np.array_equal(a, b), f"{key} diverged"

    def test_per_round_metrics_match(self, sim_run, tcp_run):
        sim_hist, _ = sim_run
        result, _ = tcp_run
        assert len(result.history.rounds) == ROUNDS
        for sim_m, tcp_m in zip(sim_hist.rounds, result.history.rounds):
            assert tcp_m.mean_acc == pytest.approx(sim_m.mean_acc)
            assert tcp_m.train_loss == pytest.approx(sim_m.train_loss)

    def test_all_clients_survived_every_round(self, tcp_run):
        result, _ = tcp_run
        assert result.lost_clients == []
        for entry in result.round_log:
            assert entry["survivors"] == list(range(NUM_CLIENTS))

    def test_per_client_byte_accounting(self, tcp_run):
        result, _ = tcp_run
        cost = result.cost
        for k in range(NUM_CLIENTS):
            assert cost.per_link[(0, k + 1)] > 0, f"no downlink to client {k}"
            assert cost.per_link[(k + 1, 0)] > 0, f"no uplink from client {k}"
        assert cost.total_bytes == sum(cost.per_link.values())
        assert len(cost.per_round) == ROUNDS  # end_round() closed each round


class TestWorkerDeath:
    @pytest.fixture(scope="class")
    def fault_run(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("tel") / "fault.jsonl"
        tel = telemetry.configure(jsonl=str(path))
        try:
            result, codes = run_tcp_federation(
                asdict(spec()),
                rounds=3,
                workers=2,
                trainer={"rho": 0.1},
                seed=0,
                round_timeout_s=30.0,
                liveness_timeout_s=3.0,
                heartbeat_s=0.3,
                chaos={1: ["--die-at-round", "1"]},  # worker 1 owns client 1
            )
            alerts = list(tel.health.alerts)
        finally:
            tel.close()
            telemetry.disable()
        return result, codes, alerts

    def test_killed_worker_exit_code(self, fault_run):
        _, codes, _ = fault_run
        assert codes[0] == 0
        assert codes[1] == -9  # SIGKILL

    def test_round_completes_with_survivors(self, fault_run):
        result, _, _ = fault_run
        log = {e["round"]: e for e in result.round_log}
        assert log[0]["survivors"] == [0, 1, 2]
        assert log[1]["survivors"] == [0, 2]
        assert log[2]["survivors"] == [0, 2]

    def test_client_lost_alert_emitted(self, fault_run):
        _, _, alerts = fault_run
        lost = [a for a in alerts if a["detector"] == "client_lost"]
        assert [a["client"] for a in lost] == [1]
        assert all(a["severity"] == "critical" for a in lost)

    def test_lost_clients_recorded(self, fault_run):
        result, _, _ = fault_run
        assert [e["client"] for e in result.lost_clients] == [1]
        assert result.lost_clients[0]["round"] == 1

    def test_survivor_only_mean_loss(self, fault_run):
        result, _, _ = fault_run
        for t, metrics in enumerate(result.history.rounds):
            losses = result.round_log[t]["losses"]
            assert sorted(losses) == result.round_log[t]["survivors"]
            assert metrics.train_loss == pytest.approx(
                float(np.mean(list(losses.values())))
            )

    def test_no_downlink_to_dead_client_after_death(self, fault_run):
        result, _, _ = fault_run
        # round 2's broadcast must not have been sent to dead client 1:
        # its downlink carries rounds 0-1 only, strictly less than a survivor's
        cost = result.cost
        assert cost.per_link[(0, 2)] < cost.per_link[(0, 1)]


class TestWorkerStall:
    @pytest.fixture(scope="class")
    def stall_run(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("tel") / "stall.jsonl"
        tel = telemetry.configure(jsonl=str(path))
        try:
            result, codes = run_tcp_federation(
                asdict(spec()),
                rounds=2,
                workers=2,
                trainer={"rho": 0.1},
                seed=0,
                round_timeout_s=2.5,
                liveness_timeout_s=30.0,  # heartbeats keep flowing: slow ≠ dead
                heartbeat_s=0.3,
                chaos={1: ["--stall-at-round", "1", "--stall-s", "8"]},
            )
            alerts = list(tel.health.alerts)
        finally:
            tel.close()
            telemetry.disable()
        return result, codes, alerts

    def test_timeout_without_death(self, stall_run):
        result, codes, _ = stall_run
        log = {e["round"]: e for e in result.round_log}
        assert log[1]["survivors"] == [0, 2]
        assert log[1]["timed_out"] == [1]
        # worker 1 was never declared dead — no client_lost, clean reap
        assert result.lost_clients == []

    def test_client_timeout_alert_is_warning(self, stall_run):
        _, _, alerts = stall_run
        timeouts = [a for a in alerts if a["detector"] == "client_timeout"]
        assert [a["client"] for a in timeouts] == [1]
        assert all(a["severity"] == "warning" for a in timeouts)
        assert not [a for a in alerts if a["detector"] == "client_lost"]

    def test_survivor_only_loss_on_timeout_round(self, stall_run):
        result, _, _ = stall_run
        losses = result.round_log[1]["losses"]
        assert sorted(losses) == [0, 2]
        assert result.history.rounds[1].train_loss == pytest.approx(
            float(np.mean(list(losses.values())))
        )

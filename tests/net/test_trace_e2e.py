"""Distributed tracing end-to-end: a telemetered loopback TCP federation.

The acceptance path for cross-process tracing: run server + 2 real
worker processes with telemetry on every rank, merge the three JSONL
streams, and assert the merged Chrome trace hangs each worker
``local_update`` span under the server round span that triggered it,
with clock-aligned timestamps.  Also pins that tracing changes no
math: the final global classifier stays bit-identical to the
in-process simulation.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro import telemetry
from repro.core import FedClassAvg
from repro.federated import FederationSpec, build_federation
from repro.net.launcher import rank_telemetry_path, run_tcp_federation
from repro.telemetry import count_remote_parented, merge_traces, read_jsonl

ROUNDS = 2
NUM_CLIENTS = 3
WORKERS = 2
# loopback clock alignment lands within ~10ms; the bug class this guards
# against (offset from training-inflated RTT samples) is 100ms-1s
ALIGN_SLOP_US = 100e3


def spec() -> FederationSpec:
    return FederationSpec(
        dataset="fashion_mnist-tiny",
        num_clients=NUM_CLIENTS,
        partition="dirichlet",
        n_train=120,
        n_test=90,
        test_per_client=15,
        batch_size=16,
        lr=3e-3,
        seed=0,
    )


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """(result, exit_codes, server_records, worker_record_streams)."""
    tmp = tmp_path_factory.mktemp("traced")
    base = str(tmp / "run.jsonl")
    tel = telemetry.configure(jsonl=base, process={"role": "server"})
    try:
        result, codes = run_tcp_federation(
            asdict(spec()),
            rounds=ROUNDS,
            workers=WORKERS,
            trainer={"rho": 0.1},
            seed=0,
            round_timeout_s=60.0,
            worker_telemetry=base,
        )
    finally:
        tel.close()
        telemetry.disable()
    server_records = read_jsonl(base)
    worker_records = [
        read_jsonl(rank_telemetry_path(base, rank)) for rank in range(1, WORKERS + 1)
    ]
    return result, codes, server_records, worker_records


@pytest.fixture(scope="module")
def merged(traced_run):
    _, _, server_records, worker_records = traced_run
    return merge_traces(server_records, worker_records)


def x_events(trace):
    return [e for e in trace["traceEvents"] if e.get("ph") == "X"]


class TestTracedFederation:
    def test_workers_exit_cleanly(self, traced_run):
        _, codes, _, _ = traced_run
        assert codes == [0] * WORKERS

    def test_every_rank_exports_a_proc_anchor(self, traced_run):
        _, _, server_records, worker_records = traced_run
        server_proc = next(r for r in server_records if r.get("type") == "proc")
        assert server_proc["role"] == "server"
        assert "wall" in server_proc and "mono" in server_proc
        for stream in worker_records:
            proc = next(r for r in stream if r.get("type") == "proc")
            assert proc["role"] == "worker" and proc["clients"]

    def test_workers_sample_their_clock_offset(self, traced_run):
        _, _, _, worker_records = traced_run
        for stream in worker_records:
            clocks = [r for r in stream if r.get("type") == "clock"]
            assert clocks, "no clock-offset samples in a worker stream"
            # the pre-EVAL probe guarantees ≥1 promptly-stamped sample
            assert min(float(c["rtt_s"]) for c in clocks) < 0.25

    def test_round_records_carry_phase_breakdown(self, traced_run):
        _, _, server_records, _ = traced_run
        rounds = [r for r in server_records if r.get("type") == "round"]
        assert len(rounds) == ROUNDS
        for r in rounds:
            phase = r["phase"]
            assert set(phase) == {"broadcast_s", "compute_s", "wait_s", "aggregate_s"}
            assert phase["compute_s"] > 0

    def test_wire_latencies_exported(self, traced_run):
        _, _, server_records, _ = traced_run
        metrics = next(r for r in server_records if r.get("type") == "metrics")
        lat = metrics["latencies"]
        assert lat["net.encode_s.CLASSIFIER"]["count"] >= ROUNDS * NUM_CLIENTS
        assert "net.phase.compute_s" in lat
        assert lat["net.straggler_wait_s"]["count"] >= 1

    def test_local_updates_parent_under_server_rounds(self, merged):
        assert count_remote_parented(merged) >= 1
        by_uid = {
            e["args"]["span_uid"]: e
            for e in x_events(merged)
            if "span_uid" in e.get("args", {})
        }
        remote = [
            e for e in x_events(merged) if (e.get("args") or {}).get("remote_parent")
        ]
        updates = [e for e in remote if e["name"] == "local_update"]
        assert len(updates) == ROUNDS * NUM_CLIENTS
        for e in updates:
            parent = by_uid[e["args"]["parent_uid"]]
            assert parent["name"] == "round"
            assert parent["pid"] == 0 and e["pid"] != 0
            assert parent["args"].get("round") == e["args"].get("round")

    def test_clock_aligned_children_sit_inside_their_round(self, merged):
        by_uid = {
            e["args"]["span_uid"]: e
            for e in x_events(merged)
            if "span_uid" in e.get("args", {})
        }
        for e in x_events(merged):
            args = e.get("args") or {}
            if not args.get("remote_parent"):
                continue
            parent = by_uid[args["parent_uid"]]
            assert e["ts"] >= parent["ts"] - ALIGN_SLOP_US
            assert e["ts"] + e["dur"] <= parent["ts"] + parent["dur"] + ALIGN_SLOP_US

    def test_tracing_changes_no_math(self, traced_run):
        """Finals bit-identical to the in-process simulation, tracing ON."""
        result, _, _, _ = traced_run
        clients, _ = build_federation(spec())
        algo = FedClassAvg(clients, rho=0.1, sample_rate=1.0, local_epochs=1, seed=0)
        algo.run(ROUNDS)
        assert set(result.global_state) == set(algo.global_state)
        for name, ref in algo.global_state.items():
            assert np.array_equal(np.asarray(result.global_state[name]), np.asarray(ref))

"""Transport interface + TcpTransport against scripted in-process workers."""

import socket
import threading
import time

import numpy as np
import pytest

from repro.comm import CostModel, SimComm
from repro.net.protocol import Message, MsgType, recv_message, send_message
from repro.net.retry import Deadline
from repro.net.transport import Connection, TcpTransport, Transport


class FakeWorker:
    """A scripted worker: dials the transport and speaks raw protocol."""

    def __init__(self, host: str, port: int, client_ids: list[int]):
        sock = socket.create_connection((host, port), timeout=5.0)
        sock.settimeout(5.0)
        self.sock = sock
        self.client_ids = client_ids

    def hello(self) -> dict:
        send_message(self.sock, Message(MsgType.HELLO, {"client_ids": self.client_ids}))
        msg, _ = recv_message(self.sock)
        assert msg.type is MsgType.CONFIG
        return msg.meta

    def send(self, msg: Message) -> int:
        return send_message(self.sock, msg)

    def recv(self) -> Message:
        return recv_message(self.sock)[0]

    def close(self):
        self.sock.close()


@pytest.fixture
def transport():
    tp = TcpTransport(2, config={"hello": "world"}, liveness_timeout_s=30.0)
    tp.listen()
    yield tp
    tp.close()


def joined_worker(tp: TcpTransport, ids: list[int]) -> FakeWorker:
    w = FakeWorker(tp.host, tp.port, ids)
    w.hello()
    return w


class TestTransportProtocol:
    def test_simcomm_satisfies_interface(self):
        assert isinstance(SimComm(3), Transport)

    def test_tcp_transport_satisfies_interface(self):
        assert isinstance(TcpTransport(2), Transport)

    def test_rank_convention_matches_simcomm(self):
        tp = TcpTransport(4)
        assert tp.size == 5  # server + 4 clients
        assert tp.rank_of(0) == 1 and tp.client_of(3) == 2

    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            TcpTransport(0)


class TestRegistration:
    def test_hello_registers_and_returns_config(self, transport):
        w = FakeWorker(transport.host, transport.port, [0, 1])
        assert w.hello() == {"hello": "world"}
        transport.wait_for_workers(5.0)
        assert transport.client_is_live(0) and transport.client_is_live(1)
        w.close()

    def test_wait_times_out_when_nobody_joins(self, transport):
        with pytest.raises(TimeoutError, match="never joined"):
            transport.wait_for_workers(0.2)

    def test_duplicate_ownership_drops_second_worker(self, transport):
        w1 = joined_worker(transport, [0])
        w2 = FakeWorker(transport.host, transport.port, [0])
        w2.send(Message(MsgType.HELLO, {"client_ids": [0]}))
        msg = w2.recv()  # server rejects with ERROR, then drops the link
        assert msg.type is MsgType.ERROR
        assert transport.client_is_live(0)
        w1.close()
        w2.close()

    def test_out_of_range_client_id_rejected(self, transport):
        w = FakeWorker(transport.host, transport.port, [7])
        w.send(Message(MsgType.HELLO, {"client_ids": [7]}))
        assert w.recv().type is MsgType.ERROR
        w.close()


class TestRoundTraffic:
    def test_collect_updates_ordered_and_accounted(self, transport):
        w = joined_worker(transport, [0, 1])
        transport.wait_for_workers(5.0)
        state = {"w": np.ones(4)}
        for k in (1, 0):  # arrive out of order
            w.send(
                Message(MsgType.CLIENT_UPDATE, {"client": k, "round": 0, "loss": 1.0}, state)
            )
        got = transport.collect_updates(0, [0, 1], Deadline(5.0))
        assert sorted(got) == [0, 1]
        # uplink bytes attributed per client rank
        assert transport.cost.per_link[(1, 0)] > 0
        assert transport.cost.per_link[(2, 0)] > 0
        w.close()

    def test_stale_round_updates_dropped(self, transport):
        w = joined_worker(transport, [0, 1])
        transport.wait_for_workers(5.0)
        w.send(Message(MsgType.CLIENT_UPDATE, {"client": 0, "round": 99}, {}))
        w.send(Message(MsgType.CLIENT_UPDATE, {"client": 0, "round": 3}, {}))
        w.send(Message(MsgType.CLIENT_UPDATE, {"client": 1, "round": 3}, {}))
        got = transport.collect_updates(3, [0, 1], Deadline(5.0))
        assert sorted(got) == [0, 1]
        assert all(meta["round"] == 3 for meta, _ in got.values())
        w.close()

    def test_deadline_expiry_returns_partial(self, transport):
        w = joined_worker(transport, [0, 1])
        transport.wait_for_workers(5.0)
        w.send(Message(MsgType.CLIENT_UPDATE, {"client": 0, "round": 0}, {}))
        t0 = time.monotonic()
        got = transport.collect_updates(0, [0, 1], Deadline(0.3))
        assert sorted(got) == [0]
        assert time.monotonic() - t0 < 5.0
        w.close()

    def test_send_to_client_downlink_accounting(self, transport):
        w = joined_worker(transport, [0, 1])
        transport.wait_for_workers(5.0)
        n = transport.send_to_client(1, MsgType.CLASSIFIER, {"round": 0}, {"w": np.ones(3)})
        msg = w.recv()
        assert msg.type is MsgType.CLASSIFIER and msg.meta["client"] == 1
        assert transport.cost.per_link[(0, 2)] == n
        w.close()

    def test_worker_death_ends_collection_early(self, transport):
        w = joined_worker(transport, [0, 1])
        transport.wait_for_workers(5.0)
        w.send(Message(MsgType.CLIENT_UPDATE, {"client": 0, "round": 0}, {}))
        time.sleep(0.1)
        w.close()  # dies before client 1 reports
        got = transport.collect_updates(0, [0, 1], Deadline(10.0))
        assert sorted(got) == [0]  # returned early, not after 10 s

    def test_bye_is_clean_not_lost(self, transport):
        lost = []
        transport.on_worker_lost = lambda link, reason: lost.append(link)
        w = joined_worker(transport, [0, 1])
        transport.wait_for_workers(5.0)
        w.send(Message(MsgType.BYE))
        for _ in range(100):
            if not transport.live_links():
                break
            time.sleep(0.05)
        assert not transport.live_links()
        assert lost == []
        w.close()

    def test_abrupt_death_fires_on_worker_lost(self, transport):
        lost = []
        transport.on_worker_lost = lambda link, reason: lost.append(sorted(link.client_ids))
        w = joined_worker(transport, [0, 1])
        transport.wait_for_workers(5.0)
        w.close()
        for _ in range(100):
            if lost:
                break
            time.sleep(0.05)
        assert lost == [[0, 1]]


class TestTransportParityOps:
    def test_bcast_and_gather(self, transport):
        w = joined_worker(transport, [0, 1])
        transport.wait_for_workers(5.0)
        state = {"w": np.arange(3.0)}

        def echo():
            for _ in range(2):
                msg = w.recv()
                assert msg.type is MsgType.CLASSIFIER
                w.send(
                    Message(
                        MsgType.CLIENT_UPDATE,
                        {"client": msg.meta["client"]},
                        msg.state,
                    )
                )

        t = threading.Thread(target=echo, daemon=True)
        t.start()
        transport.bcast(state, root=0)
        out = transport.gather({1: None, 2: None}, root=0)
        t.join(5.0)
        assert len(out) == 2
        assert all(np.array_equal(s["w"], state["w"]) for s in out)
        w.close()

    def test_send_rejects_non_server_src(self, transport):
        with pytest.raises(ValueError):
            transport.send({}, src=1, dst=2)

    def test_recv_empty_raises_lookup_error(self, transport):
        with pytest.raises(LookupError):
            transport.recv(0)


class TestConnection:
    def test_byte_counters_match_frames(self, transport):
        w = joined_worker(transport, [0, 1])
        transport.wait_for_workers(5.0)
        link = transport.owner_of(0)
        rx0 = link.conn.bytes_rx
        n = w.send(Message(MsgType.CLIENT_UPDATE, {"client": 0, "round": 0}, {"w": np.ones(2)}))
        transport.collect_updates(0, [0], Deadline(5.0))
        assert link.conn.bytes_rx - rx0 == n
        assert isinstance(link.conn, Connection)
        w.close()

    def test_liveness_timeout_reaps_silent_worker(self):
        tp = TcpTransport(1, liveness_timeout_s=0.3)
        tp.listen()
        try:
            w = joined_worker(tp, [0])
            tp.wait_for_workers(5.0)
            # silent worker: no heartbeat, no updates — liveness must trip
            got = tp.collect_updates(0, [0], Deadline(10.0))
            assert got == {}
            assert not tp.client_is_live(0)
            w.close()
        finally:
            tp.close()

    def test_cost_model_injection(self):
        cost = CostModel()
        tp = TcpTransport(1, cost_model=cost)
        assert tp.cost is cost

"""BatchNorm: normalization semantics, running statistics, modes."""

import numpy as np

from repro import nn
from repro.tensor import Tensor, gradcheck


def _x(shape, seed=0, loc=0.0, scale=1.0):
    return np.random.default_rng(seed).normal(loc, scale, size=shape)


class TestBatchNorm2d:
    def test_train_output_normalized(self):
        bn = nn.BatchNorm2d(3)
        x = _x((8, 3, 4, 4), loc=5.0, scale=2.0)
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_affine_applied(self):
        bn = nn.BatchNorm2d(2)
        bn.weight.data[...] = 3.0
        bn.bias.data[...] = 1.0
        out = bn(Tensor(_x((8, 2, 3, 3)))).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 1.0, atol=1e-6)
        assert np.allclose(out.std(axis=(0, 2, 3)), 3.0, atol=5e-2)

    def test_running_stats_updated_in_train(self):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = _x((16, 2, 4, 4), loc=4.0)
        bn(Tensor(x))
        assert np.allclose(bn.running_mean, 0.5 * x.mean(axis=(0, 2, 3)), atol=1e-6)
        assert bn.num_batches_tracked == 1

    def test_running_stats_not_updated_in_eval(self):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(_x((4, 2, 3, 3), loc=10.0)))
        assert np.allclose(bn.running_mean, before)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(1, momentum=1.0)
        x = _x((32, 1, 4, 4), loc=2.0)
        bn(Tensor(x))  # running stats ← batch stats
        bn.eval()
        out = bn(Tensor(x)).data
        assert abs(out.mean()) < 0.05

    def test_eval_single_sample_works(self):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        out = bn(Tensor(_x((1, 2, 3, 3))))
        assert np.isfinite(out.data).all()

    def test_grad_flows(self):
        bn = nn.BatchNorm2d(2)

        def fn(x):
            return (bn(x) ** 2).sum()

        assert gradcheck(fn, [_x((4, 2, 3, 3))], atol=1e-4)

    def test_no_affine(self):
        bn = nn.BatchNorm2d(2, affine=False)
        assert list(bn.named_parameters()) == []
        out = bn(Tensor(_x((4, 2, 3, 3))))
        assert out.shape == (4, 2, 3, 3)

    def test_unbiased_running_var(self):
        bn = nn.BatchNorm2d(1, momentum=1.0)
        x = _x((8, 1, 2, 2), scale=3.0)
        bn(Tensor(x))
        n = 8 * 2 * 2
        expected = x.var() * n / (n - 1)
        assert np.allclose(bn.running_var, expected, rtol=1e-6)


class TestBatchNorm1d:
    def test_normalizes_features(self):
        bn = nn.BatchNorm1d(4)
        out = bn(Tensor(_x((32, 4), loc=3.0))).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)

    def test_grad(self):
        bn = nn.BatchNorm1d(3)
        assert gradcheck(lambda x: (bn(x) ** 2).sum(), [_x((6, 3))], atol=1e-4)

"""GroupNorm and LayerNorm."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck


def _x(shape, seed=0, loc=0.0):
    return np.random.default_rng(seed).normal(loc, 1.0, size=shape)


class TestGroupNorm:
    def test_normalizes_per_group(self):
        gn = nn.GroupNorm(2, 4, affine=False)
        out = gn(Tensor(_x((3, 4, 5, 5), loc=7.0))).data
        # each (sample, group) block has ~zero mean / unit variance
        grouped = out.reshape(3, 2, 2 * 25)
        assert np.allclose(grouped.mean(axis=2), 0.0, atol=1e-6)
        assert np.allclose(grouped.std(axis=2), 1.0, atol=1e-3)

    def test_no_cross_sample_dependence(self):
        """Per-sample normalization: one sample's output is independent of
        the rest of the batch (unlike BatchNorm)."""
        gn = nn.GroupNorm(2, 4)
        x = _x((4, 4, 3, 3))
        full = gn(Tensor(x)).data[0]
        solo = gn(Tensor(x[:1])).data[0]
        assert np.allclose(full, solo, atol=1e-10)

    def test_affine(self):
        gn = nn.GroupNorm(1, 2)
        gn.weight.data[...] = 2.0
        gn.bias.data[...] = 5.0
        out = gn(Tensor(_x((2, 2, 4, 4)))).data
        assert abs(out.mean() - 5.0) < 0.1

    def test_indivisible_channels_raise(self):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 4)

    def test_wrong_channels_raise(self):
        gn = nn.GroupNorm(2, 4)
        with pytest.raises(ValueError):
            gn(Tensor(_x((1, 6, 2, 2))))

    def test_grad(self):
        gn = nn.GroupNorm(2, 4)
        assert gradcheck(lambda x: (gn(x) ** 2).sum(), [_x((2, 4, 3, 3))], atol=1e-4)

    def test_no_running_state(self):
        gn = nn.GroupNorm(2, 4)
        assert list(gn.named_buffers()) == []

    def test_eval_equals_train(self):
        gn = nn.GroupNorm(2, 4)
        x = Tensor(_x((2, 4, 3, 3)))
        a = gn(x).data
        gn.eval()
        b = gn(x).data
        assert np.allclose(a, b)


class TestLayerNorm:
    def test_normalizes_rows(self):
        ln = nn.LayerNorm(8, affine=False)
        out = ln(Tensor(_x((5, 8), loc=3.0))).data
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-6)

    def test_wrong_dim_raises(self):
        with pytest.raises(ValueError):
            nn.LayerNorm(8)(Tensor(_x((2, 4))))

    def test_grad(self):
        ln = nn.LayerNorm(6)
        assert gradcheck(lambda x: (ln(x) ** 2).sum(), [_x((4, 6))], atol=1e-4)

    def test_affine_params_registered(self):
        ln = nn.LayerNorm(6)
        assert set(dict(ln.named_parameters())) == {"weight", "bias"}

"""Initializer statistics and determinism."""

import math

import numpy as np

from repro.nn import init


class TestFanComputation:
    def test_linear_shape(self):
        fan_in, fan_out = init._fan_in_out((8, 4))
        assert (fan_in, fan_out) == (4, 8)

    def test_conv_shape(self):
        fan_in, fan_out = init._fan_in_out((16, 3, 5, 5))
        assert fan_in == 3 * 25
        assert fan_out == 16 * 25


class TestStatistics:
    def test_kaiming_normal_std(self):
        w = init.kaiming_normal((2000, 100), rng=np.random.default_rng(0))
        expected = math.sqrt(2.0 / 100)
        assert abs(w.std() - expected) / expected < 0.05

    def test_kaiming_uniform_bound(self):
        w = init.kaiming_uniform((100, 50), rng=np.random.default_rng(0))
        gain = math.sqrt(2.0 / (1 + 5))
        bound = gain * math.sqrt(3.0 / 50)
        assert np.abs(w).max() <= bound + 1e-12

    def test_xavier_uniform_bound(self):
        w = init.xavier_uniform((60, 40), rng=np.random.default_rng(0))
        bound = math.sqrt(6.0 / 100)
        assert np.abs(w).max() <= bound + 1e-12

    def test_xavier_normal_std(self):
        w = init.xavier_normal((1000, 200), rng=np.random.default_rng(0))
        expected = math.sqrt(2.0 / 1200)
        assert abs(w.std() - expected) / expected < 0.1

    def test_uniform_fan_in_bound(self):
        b = init.uniform_fan_in((1000,), 25, rng=np.random.default_rng(0))
        assert np.abs(b).max() <= 0.2

    def test_zeros_ones(self):
        assert np.all(init.zeros((3, 3)) == 0)
        assert np.all(init.ones((2,)) == 1)


class TestDeterminism:
    def test_same_rng_same_weights(self):
        a = init.kaiming_normal((5, 5), rng=np.random.default_rng(42))
        b = init.kaiming_normal((5, 5), rng=np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_different_rng_different_weights(self):
        a = init.kaiming_normal((5, 5), rng=np.random.default_rng(1))
        b = init.kaiming_normal((5, 5), rng=np.random.default_rng(2))
        assert not np.array_equal(a, b)

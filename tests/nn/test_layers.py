"""Layer forward semantics: Linear, Conv2d, pooling, activations, dropout."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


def _x(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape))


class TestLinear:
    def test_output_shape(self):
        assert nn.Linear(5, 3)(_x((7, 5))).shape == (7, 3)

    def test_matches_manual(self):
        lin = nn.Linear(4, 2)
        x = _x((3, 4))
        ref = x.data @ lin.weight.data.T + lin.bias.data
        assert np.allclose(lin(x).data, ref)

    def test_no_bias(self):
        lin = nn.Linear(4, 2, bias=False)
        x = _x((3, 4))
        assert np.allclose(lin(x).data, x.data @ lin.weight.data.T)

    def test_grad_flows_to_params(self):
        lin = nn.Linear(3, 2)
        lin(_x((2, 3))).sum().backward()
        assert lin.weight.grad is not None and lin.bias.grad is not None

    def test_deterministic_given_rng(self):
        a = nn.Linear(3, 2, rng=np.random.default_rng(7))
        b = nn.Linear(3, 2, rng=np.random.default_rng(7))
        assert np.allclose(a.weight.data, b.weight.data)


class TestConv2d:
    def test_output_shape(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        assert conv(_x((2, 3, 8, 8))).shape == (2, 8, 4, 4)

    def test_param_shapes(self):
        conv = nn.Conv2d(3, 8, 5)
        assert conv.weight.shape == (8, 3, 5, 5)
        assert conv.bias.shape == (8,)

    def test_no_bias(self):
        assert nn.Conv2d(1, 1, 3, bias=False).bias is None


class TestPoolingModules:
    def test_max_pool_shape(self):
        assert nn.MaxPool2d(2)(_x((1, 2, 8, 8))).shape == (1, 2, 4, 4)

    def test_max_pool_stride_default_equals_kernel(self):
        assert nn.MaxPool2d(3).stride == 3

    def test_avg_pool_shape(self):
        assert nn.AvgPool2d(2, 2)(_x((1, 2, 6, 6))).shape == (1, 2, 3, 3)

    def test_adaptive_shape(self):
        assert nn.AdaptiveAvgPool2d(1)(_x((2, 5, 7, 3))).shape == (2, 5, 1, 1)


class TestActivations:
    def test_relu_module(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0])))
        assert np.allclose(out.data, [0, 2])

    def test_leaky_relu_module(self):
        out = nn.LeakyReLU(0.5)(Tensor(np.array([-2.0, 2.0])))
        assert np.allclose(out.data, [-1, 2])

    def test_tanh_sigmoid_modules(self):
        x = Tensor(np.array([0.0]))
        assert np.allclose(nn.Tanh()(x).data, [0.0])
        assert np.allclose(nn.Sigmoid()(x).data, [0.5])


class TestDropout:
    def test_eval_is_identity(self):
        d = nn.Dropout(0.9)
        d.eval()
        x = _x((4, 4))
        assert np.allclose(d(x).data, x.data)

    def test_train_zeroes_and_scales(self):
        d = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = d(x).data
        zeros = (out == 0).mean()
        assert 0.4 < zeros < 0.6
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted scaling 1/(1-p)

    def test_p_zero_is_identity(self):
        d = nn.Dropout(0.0)
        x = _x((3, 3))
        assert d(x) is x

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)

    def test_expected_value_preserved(self):
        d = nn.Dropout(0.3, rng=np.random.default_rng(0))
        x = Tensor(np.ones((200, 200)))
        assert abs(d(x).data.mean() - 1.0) < 0.02

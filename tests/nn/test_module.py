"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


def _mlp():
    return nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))


class TestRegistration:
    def test_parameter_autoregistered(self):
        lin = nn.Linear(3, 2)
        names = dict(lin.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_no_bias_not_registered(self):
        lin = nn.Linear(3, 2, bias=False)
        assert set(dict(lin.named_parameters())) == {"weight"}

    def test_submodule_prefixes(self):
        m = _mlp()
        names = [n for n, _ in m.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_reassignment_unregisters(self):
        lin = nn.Linear(3, 2)
        lin.weight = None
        assert "weight" not in dict(lin.named_parameters())

    def test_named_modules(self):
        m = _mlp()
        names = [n for n, _ in m.named_modules()]
        assert "" in names and "0" in names and "1" in names

    def test_num_parameters(self):
        lin = nn.Linear(3, 2)
        assert lin.num_parameters() == 3 * 2 + 2

    def test_parameter_requires_grad_even_under_no_grad(self):
        from repro.tensor import no_grad

        with no_grad():
            lin = nn.Linear(2, 2)
        assert all(p.requires_grad for p in lin.parameters())


class TestStateDict:
    def test_roundtrip(self):
        m1, m2 = _mlp(), _mlp()
        m2.load_state_dict(m1.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        assert np.allclose(m1(x).data, m2(x).data)

    def test_state_dict_copies(self):
        m = nn.Linear(2, 2)
        sd = m.state_dict()
        sd["weight"][...] = 99
        assert not np.allclose(m.weight.data, 99)

    def test_missing_key_strict_raises(self):
        m = nn.Linear(2, 2)
        sd = m.state_dict()
        del sd["bias"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_missing_key_nonstrict_ok(self):
        m = nn.Linear(2, 2)
        sd = m.state_dict()
        del sd["bias"]
        m.load_state_dict(sd, strict=False)

    def test_extra_key_strict_raises(self):
        m = nn.Linear(2, 2)
        sd = m.state_dict()
        sd["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_shape_mismatch_raises(self):
        m = nn.Linear(2, 2)
        sd = m.state_dict()
        sd["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            m.load_state_dict(sd)

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(4)
        sd = bn.state_dict()
        assert "running_mean" in sd and "running_var" in sd and "num_batches_tracked" in sd

    def test_buffer_roundtrip(self):
        bn1, bn2 = nn.BatchNorm2d(3), nn.BatchNorm2d(3)
        bn1.train()
        bn1(Tensor(np.random.default_rng(0).normal(size=(4, 3, 2, 2))))
        bn2.load_state_dict(bn1.state_dict())
        assert np.allclose(bn1.running_mean, bn2.running_mean)
        assert bn2.num_batches_tracked == 1

    def test_load_preserves_parameter_identity(self):
        m = nn.Linear(2, 2)
        p_before = m.weight
        m.load_state_dict(m.state_dict())
        assert m.weight is p_before  # in-place load (optimizer refs stay valid)


class TestModes:
    def test_train_eval_propagates(self):
        m = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        m.eval()
        assert not m.training
        assert not m[0].training
        m.train()
        assert m[0].training

    def test_zero_grad(self):
        m = nn.Linear(2, 2)
        (m(Tensor(np.ones((1, 2)))) ** 2).sum().backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None


class TestContainers:
    def test_sequential_iteration_and_index(self):
        m = _mlp()
        assert len(m) == 3
        assert isinstance(m[0], nn.Linear)
        assert len(list(iter(m))) == 3

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert isinstance(ml[1], nn.Linear)
        # parameters of list items are registered
        assert len(list(ml.named_parameters())) == 4

    def test_identity(self):
        x = Tensor(np.ones((2, 2)))
        assert nn.Identity()(x) is x

    def test_flatten_module(self):
        out = nn.Flatten()(Tensor(np.ones((2, 3, 4))))
        assert out.shape == (2, 12)

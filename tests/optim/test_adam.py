"""Adam semantics against a NumPy reference implementation."""

import numpy as np

from repro.nn.module import Parameter
from repro.optim import Adam


def _reference_adam(p0, grads, lr, betas=(0.9, 0.999), eps=1e-8, wd=0.0):
    b1, b2 = betas
    p = p0.copy()
    m = np.zeros_like(p)
    v = np.zeros_like(p)
    for t, g in enumerate(grads, start=1):
        g = g + wd * p
        m = b1 * m + (1 - b1) * g
        v = b2 * v + (1 - b2) * g * g
        m_hat = m / (1 - b1**t)
        v_hat = v / (1 - b2**t)
        p = p - lr * m_hat / (np.sqrt(v_hat) + eps)
    return p


class TestAgainstReference:
    def test_multiple_steps(self):
        rng = np.random.default_rng(0)
        p0 = rng.normal(size=5)
        grads = [rng.normal(size=5) for _ in range(7)]
        p = Parameter(p0.copy())
        opt = Adam([p], lr=0.01)
        for g in grads:
            p.grad = g.copy()
            opt.step()
        assert np.allclose(p.data, _reference_adam(p0, grads, 0.01), atol=1e-12)

    def test_weight_decay(self):
        rng = np.random.default_rng(1)
        p0 = rng.normal(size=4)
        grads = [rng.normal(size=4) for _ in range(3)]
        p = Parameter(p0.copy())
        opt = Adam([p], lr=0.05, weight_decay=0.1)
        for g in grads:
            p.grad = g.copy()
            opt.step()
        assert np.allclose(p.data, _reference_adam(p0, grads, 0.05, wd=0.1), atol=1e-12)

    def test_bias_correction_first_step(self):
        # first step with constant grad should move ≈ lr in grad direction
        p = Parameter(np.array([0.0]))
        p.grad = np.array([0.3])
        Adam([p], lr=0.01).step()
        assert np.allclose(p.data, [-0.01], atol=1e-6)

    def test_skips_none_grad(self):
        p = Parameter(np.array([1.0]))
        Adam([p], lr=0.01).step()
        assert np.allclose(p.data, [1.0])

    def test_state_per_parameter(self):
        p1 = Parameter(np.array([0.0]))
        p2 = Parameter(np.array([0.0]))
        opt = Adam([p1, p2], lr=0.01)
        p1.grad = np.array([1.0])
        p2.grad = None
        opt.step()
        p1.grad = None
        p2.grad = np.array([1.0])
        opt.step()
        # p2's first real step gets fresh first-step bias correction at t=2
        assert p1.data[0] != 0.0 and p2.data[0] != 0.0


class TestConvergence:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.grad = 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 1e-3

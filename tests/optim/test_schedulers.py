"""LR schedulers."""

import numpy as np

from repro.nn.module import Parameter
from repro.optim import Adam, ConstantLR, CosineAnnealingLR, SGD, StepLR


def _opt(lr=1.0):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestConstant:
    def test_never_changes(self):
        opt = _opt(0.5)
        sched = ConstantLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == 0.5


class TestStepLR:
    def test_decays_at_boundaries(self):
        opt = _opt(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(6):
            sched.step()
            lrs.append(opt.lr)
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01, 0.001])


class TestCosine:
    def test_endpoints(self):
        opt = _opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        assert np.isclose(sched.get_lr(), 1.0)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.0, atol=1e-12)

    def test_midpoint_half(self):
        opt = _opt(2.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert np.isclose(opt.lr, 1.0)

    def test_clamps_beyond_t_max(self):
        opt = _opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=4, eta_min=0.2)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.2)

    def test_works_with_adam(self):
        opt = Adam([Parameter(np.zeros(1))], lr=0.1)
        sched = CosineAnnealingLR(opt, t_max=2)
        sched.step()
        assert 0 < opt.lr < 0.1

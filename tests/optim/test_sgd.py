"""SGD semantics against closed-form updates."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD


def _param(v):
    p = Parameter(np.array(v, dtype=np.float64))
    return p


class TestVanilla:
    def test_single_step(self):
        p = _param([1.0, 2.0])
        p.grad = np.array([0.5, -0.5])
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [0.95, 2.05])

    def test_skips_none_grad(self):
        p = _param([1.0])
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = _param([1.0])
        p.grad = np.ones(1)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([_param([1.0])], lr=0.0)


class TestMomentum:
    def test_two_steps_match_closed_form(self):
        p = _param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.9, p=-2.9
        assert np.allclose(p.data, [-2.9])

    def test_nesterov(self):
        p = _param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9, nesterov=True)
        p.grad = np.array([1.0])
        opt.step()  # v=1, step = g + mu*v = 1.9
        assert np.allclose(p.data, [-1.9])

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([_param([1.0])], lr=0.1, nesterov=True)


class TestWeightDecay:
    def test_decay_added_to_grad(self):
        p = _param([2.0])
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        # effective grad = 0 + 0.5*2 = 1 -> p = 2 - 0.1
        assert np.allclose(p.data, [1.9])


class TestConvergence:
    def test_converges_on_quadratic(self):
        p = _param([5.0])
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(200):
            p.grad = 2 * p.data  # d/dp p^2
            opt.step()
        assert abs(p.data[0]) < 1e-4

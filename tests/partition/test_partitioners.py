"""Non-iid partitioners: invariants and paper properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import (
    dirichlet_partition,
    iid_partition,
    label_distribution,
    partition_dataset,
    skewed_partition,
)


def _labels(n=400, classes=10, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.tile(np.arange(classes), n // classes + 1)[:n]
    rng.shuffle(labels)
    return labels


class TestDirichlet:
    def test_disjoint(self):
        parts = dirichlet_partition(_labels(), 8, seed=0)
        all_idx = np.concatenate(parts)
        assert len(all_idx) == len(set(all_idx))

    def test_equal_sizes(self):
        parts = dirichlet_partition(_labels(400), 8, seed=0)
        assert all(len(p) == 50 for p in parts)

    def test_deterministic(self):
        a = dirichlet_partition(_labels(), 8, seed=3)
        b = dirichlet_partition(_labels(), 8, seed=3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_seed_changes_partition(self):
        a = dirichlet_partition(_labels(), 8, seed=1)
        b = dirichlet_partition(_labels(), 8, seed=2)
        assert any(not np.array_equal(x, y) for x, y in zip(a, b))

    def test_small_alpha_more_skewed(self):
        """Entropy of client label distributions decreases with alpha."""
        from repro.partition import distribution_entropy

        labels = _labels(2000)
        e = {}
        for alpha in (0.1, 100.0):
            parts = dirichlet_partition(labels, 10, alpha=alpha, seed=0)
            dist = label_distribution(labels, parts, 10)
            e[alpha] = distribution_entropy(dist).mean()
        assert e[0.1] < e[100.0]

    def test_indices_in_range(self):
        parts = dirichlet_partition(_labels(100), 4, seed=0)
        for p in parts:
            assert p.min() >= 0 and p.max() < 100


class TestSkewed:
    def test_classes_per_client_respected(self):
        labels = _labels(400)
        parts = skewed_partition(labels, 8, classes_per_client=2, seed=0)
        dist = label_distribution(labels, parts, 10)
        assert ((dist > 0).sum(axis=1) <= 2).all()

    def test_three_classes_per_client(self):
        labels = _labels(600)
        parts = skewed_partition(labels, 6, classes_per_client=3, seed=0)
        dist = label_distribution(labels, parts, 10)
        assert ((dist > 0).sum(axis=1) <= 3).all()

    def test_disjoint(self):
        parts = skewed_partition(_labels(), 8, seed=0)
        all_idx = np.concatenate(parts)
        assert len(all_idx) == len(set(all_idx))

    def test_paper_setting_exact_equal_sizes(self):
        """20 clients × 2 classes over 10 balanced classes divides exactly."""
        labels = _labels(2000)
        parts = skewed_partition(labels, 20, classes_per_client=2, seed=0)
        assert all(len(p) == 100 for p in parts)

    def test_near_equal_sizes_otherwise(self):
        labels = _labels(400)
        parts = skewed_partition(labels, 8, seed=0)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 0.5 * (400 // 8)

    def test_too_many_classes_raises(self):
        with pytest.raises(ValueError):
            skewed_partition(_labels(classes=3), 4, classes_per_client=5)

    def test_deterministic(self):
        a = skewed_partition(_labels(), 8, seed=7)
        b = skewed_partition(_labels(), 8, seed=7)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestIID:
    def test_equal_disjoint(self):
        parts = iid_partition(_labels(100), 4, seed=0)
        assert all(len(p) == 25 for p in parts)
        assert len(set(np.concatenate(parts))) == 100

    def test_roughly_uniform_labels(self):
        labels = _labels(1000)
        parts = iid_partition(labels, 4, seed=0)
        dist = label_distribution(labels, parts, 10)
        assert dist.min() > 10  # each class present everywhere


class TestDispatch:
    def test_partition_dataset_dispatch(self):
        from repro.data import make_synthetic_dataset

        ds = make_synthetic_dataset("cifar10-tiny", 100, seed=0)
        for scheme in ("dirichlet", "skewed", "iid"):
            parts = partition_dataset(ds, scheme, 4, seed=0)
            assert len(parts) == 4

    def test_unknown_scheme_raises(self):
        from repro.data import make_synthetic_dataset

        ds = make_synthetic_dataset("cifar10-tiny", 40, seed=0)
        with pytest.raises(KeyError):
            partition_dataset(ds, "zipf", 4)


@settings(max_examples=15, deadline=None)
@given(
    num_clients=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_dirichlet_always_disjoint_equal(num_clients, seed):
    labels = _labels(300)
    parts = dirichlet_partition(labels, num_clients, seed=seed)
    sizes = {len(p) for p in parts}
    assert len(sizes) == 1
    cat = np.concatenate(parts)
    assert len(cat) == len(set(cat))


@settings(max_examples=15, deadline=None)
@given(
    num_clients=st.integers(min_value=2, max_value=12),
    m=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_skewed_class_constraint(num_clients, m, seed):
    labels = _labels(480, classes=8)
    parts = skewed_partition(labels, num_clients, classes_per_client=m, seed=seed)
    dist = label_distribution(labels, parts, 8)
    assert ((dist > 0).sum(axis=1) <= m).all()
    cat = np.concatenate(parts)
    assert len(cat) == len(set(cat))

"""Partition statistics and test-set mirroring."""

import numpy as np
import pytest

from repro.partition import (
    dirichlet_partition,
    distribution_entropy,
    label_distribution,
    matching_test_indices,
)


class TestLabelDistribution:
    def test_counts(self):
        labels = np.array([0, 0, 1, 2, 2, 2])
        parts = [np.array([0, 1, 2]), np.array([3, 4, 5])]
        dist = label_distribution(labels, parts, 3)
        assert np.array_equal(dist, [[2, 1, 0], [0, 0, 3]])

    def test_row_sums_are_shard_sizes(self):
        labels = np.random.default_rng(0).integers(0, 5, 100)
        parts = dirichlet_partition(labels, 4, seed=0)
        dist = label_distribution(labels, parts, 5)
        assert np.array_equal(dist.sum(1), [len(p) for p in parts])


class TestEntropy:
    def test_single_class_zero(self):
        assert distribution_entropy(np.array([[10, 0, 0]]))[0] == 0.0

    def test_uniform_is_log_c(self):
        e = distribution_entropy(np.array([[5, 5, 5, 5]]))[0]
        assert np.isclose(e, np.log(4))

    def test_empty_client_zero(self):
        assert distribution_entropy(np.array([[0, 0]]))[0] == 0.0


class TestMatchingTestIndices:
    def _setup(self):
        rng = np.random.default_rng(0)
        train_labels = np.tile(np.arange(4), 50)
        test_labels = np.tile(np.arange(4), 25)
        return train_labels, test_labels

    def test_mirrors_proportions(self):
        train_labels, test_labels = self._setup()
        # client with only classes 0 and 1
        part = np.flatnonzero((train_labels == 0) | (train_labels == 1))[:40]
        idx = matching_test_indices(train_labels, part, test_labels, 20, seed=0)
        picked = test_labels[idx]
        assert set(picked) <= {0, 1}
        assert abs((picked == 0).sum() - (picked == 1).sum()) <= 2

    def test_unseen_classes_excluded(self):
        train_labels, test_labels = self._setup()
        part = np.flatnonzero(train_labels == 2)[:30]
        idx = matching_test_indices(train_labels, part, test_labels, 10, seed=0)
        assert (test_labels[idx] == 2).all()

    def test_size_close_to_requested(self):
        train_labels, test_labels = self._setup()
        part = np.arange(60)
        idx = matching_test_indices(train_labels, part, test_labels, 20, seed=0)
        assert 15 <= len(idx) <= 20

    def test_deterministic(self):
        train_labels, test_labels = self._setup()
        part = np.arange(40)
        a = matching_test_indices(train_labels, part, test_labels, 10, seed=5)
        b = matching_test_indices(train_labels, part, test_labels, 10, seed=5)
        assert np.array_equal(a, b)

    def test_empty_shard_raises(self):
        train_labels, test_labels = self._setup()
        with pytest.raises(ValueError):
            matching_test_indices(train_labels, np.array([], dtype=int), test_labels, 10)

    def test_no_duplicate_indices(self):
        train_labels, test_labels = self._setup()
        idx = matching_test_indices(train_labels, np.arange(100), test_labels, 50, seed=0)
        assert len(idx) == len(set(idx))

"""Telemetry tests always restore the process-global null backend."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _restore_null_backend():
    yield
    telemetry.disable()
    prof = telemetry.active_profiler()
    if prof is not None:
        prof.deactivate()
    mem = telemetry.active_memprof()
    if mem is not None:
        mem.deactivate()

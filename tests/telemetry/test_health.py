"""HealthMonitor + detector unit tests."""

import math
import threading

import pytest

from repro.telemetry.health import (
    AccuracyDivergenceDetector,
    DeadClientDetector,
    HealthMonitor,
    LossSpikeDetector,
    NaNLossDetector,
    StragglerDetector,
    default_detectors,
)


def make_monitor(detectors, **kw):
    sink_records = []
    alerts_seen = []
    monitor = HealthMonitor(
        detectors=detectors,
        sink=sink_records.append,
        on_alert=alerts_seen.append,
        **kw,
    )
    return monitor, sink_records, alerts_seen


class TestNaNLossDetector:
    def test_nan_loss_fires_critical_alert_mid_round(self):
        monitor, sink, seen = make_monitor([NaNLossDetector()])
        monitor.begin_round(0, [0, 1])
        monitor.observe_client(0, loss=0.5)
        assert monitor.alerts == []
        monitor.observe_client(1, loss=float("nan"))
        # the alert fired immediately (before end_round), to the sink
        # and the callback, as a well-formed alert record
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert alert["type"] == "alert"
        assert alert["detector"] == "nan_loss"
        assert alert["severity"] == "critical"
        assert alert["client"] == 1 and alert["round"] == 0
        assert seen == [alert]
        assert alert in sink

    def test_inf_grad_norm_fires(self):
        monitor, _, _ = make_monitor([NaNLossDetector()])
        monitor.begin_round(0, [0])
        monitor.observe_client(0, loss=0.5, grad_norm=float("inf"))
        assert [a["field"] for a in monitor.alerts] == ["grad_norm"]

    def test_finite_values_are_silent(self):
        monitor, _, _ = make_monitor([NaNLossDetector()])
        monitor.begin_round(0, [0])
        monitor.observe_client(0, loss=1e9, grad_norm=1e9)
        monitor.end_round(0)
        assert monitor.alerts == []


class TestLossSpikeDetector:
    def test_spike_over_rolling_history_fires(self):
        monitor, _, _ = make_monitor([LossSpikeDetector(z_threshold=4.0, min_points=3)])
        for t, loss in enumerate([1.0, 1.1, 0.9, 1.0]):
            monitor.begin_round(t, [0])
            monitor.observe_client(0, loss=loss)
            monitor.end_round(t)
        assert monitor.alerts == []
        monitor.begin_round(4, [0])
        monitor.observe_client(0, loss=50.0)
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0]["detector"] == "loss_spike"
        assert monitor.alerts[0]["value"] == 50.0

    def test_needs_min_points(self):
        monitor, _, _ = make_monitor([LossSpikeDetector(min_points=3)])
        monitor.begin_round(0, [0])
        monitor.observe_client(0, loss=1.0)
        monitor.begin_round(1, [0])
        monitor.observe_client(0, loss=1000.0)  # only 1 point of history
        assert monitor.alerts == []

    def test_constant_history_then_jump(self):
        """Zero variance history must not divide by zero."""
        monitor, _, _ = make_monitor([LossSpikeDetector(min_points=3)])
        for t in range(3):
            monitor.begin_round(t, [0])
            monitor.observe_client(0, loss=1.0)
        monitor.begin_round(3, [0])
        monitor.observe_client(0, loss=2.0)
        assert len(monitor.alerts) == 1


class TestAccuracyDivergenceDetector:
    def test_sharp_drop_fires(self):
        monitor, _, _ = make_monitor(
            [AccuracyDivergenceDetector(drop_threshold=0.2, min_points=2)]
        )
        for t, accs in enumerate([[0.6, 0.5], [0.65, 0.55], [0.66, 0.2]]):
            monitor.begin_round(t, [0, 1])
            monitor.end_round(t, accs=accs)
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert alert["detector"] == "accuracy_divergence"
        assert alert["client"] == 1
        assert alert["drop"] == pytest.approx(0.35)

    def test_gradual_decline_within_threshold_is_silent(self):
        monitor, _, _ = make_monitor(
            [AccuracyDivergenceDetector(drop_threshold=0.2, min_points=2)]
        )
        for t, acc in enumerate([0.6, 0.55, 0.5, 0.45]):
            monitor.begin_round(t, [0])
            monitor.end_round(t, accs=[acc])
        assert monitor.alerts == []


class TestStragglerDetector:
    def test_slow_client_vs_round_median_fires(self):
        monitor, sink, _ = make_monitor([StragglerDetector(ratio=3.0, min_clients=3)])
        monitor.begin_round(0, [0, 1, 2, 3])
        for k, dur in enumerate([0.1, 0.12, 0.11, 1.0]):
            monitor.observe_client(k, duration_s=dur)
        alerts = monitor.end_round(0)
        assert [a["client"] for a in alerts] == [3]
        assert alerts[0]["detector"] == "straggler"
        assert alerts[0] in sink  # alert reached the JSONL sink

    def test_too_few_clients_is_silent(self):
        monitor, _, _ = make_monitor([StragglerDetector(ratio=3.0, min_clients=3)])
        monitor.begin_round(0, [0, 1])
        monitor.observe_client(0, duration_s=0.1)
        monitor.observe_client(1, duration_s=10.0)
        assert monitor.end_round(0) == []


class TestDeadClientDetector:
    def test_sampled_but_never_surviving_fires_once(self):
        monitor, _, _ = make_monitor([DeadClientDetector(min_rounds=3)])
        for t in range(5):
            monitor.begin_round(t, [0, 1])
            monitor.end_round(t, survivors=[1])  # client 0 never survives
        dead = [a for a in monitor.alerts if a["detector"] == "dead_client"]
        assert len(dead) == 1  # fires once, not every round after
        assert dead[0]["client"] == 0

    def test_one_survival_resets_nothing_but_prevents_alert(self):
        monitor, _, _ = make_monitor([DeadClientDetector(min_rounds=3)])
        for t in range(4):
            monitor.begin_round(t, [0])
            monitor.end_round(t, survivors=[0])
        assert monitor.alerts == []


class TestClientRoundRecords:
    def test_records_carry_observations_and_participation_flags(self):
        monitor, sink, _ = make_monitor([])
        monitor.begin_round(0, [0, 1])
        monitor.observe_client(0, loss=0.4, grad_norm=1.2, bytes_up=100)
        monitor.observe_client(1, loss=0.6)
        monitor.end_round(0, survivors=[0], accs=[0.5, 0.6, 0.7])
        records = [r for r in sink if r["type"] == "client_round"]
        by_client = {r["client"]: r for r in records}
        # sampled clients carry survived True/False; client 2 was only
        # evaluated (not sampled), so survived is N/A
        assert by_client[0]["sampled"] and by_client[0]["survived"] is True
        assert by_client[1]["sampled"] and by_client[1]["survived"] is False
        assert not by_client[2]["sampled"] and by_client[2]["survived"] is None
        assert by_client[0]["loss"] == 0.4 and by_client[0]["bytes_up"] == 100
        assert by_client[2]["acc"] == 0.7

    def test_emit_client_records_false_keeps_jsonl_to_alerts(self):
        monitor, sink, _ = make_monitor([NaNLossDetector()], emit_client_records=False)
        monitor.begin_round(0, [0])
        monitor.observe_client(0, loss=float("nan"))
        monitor.end_round(0)
        assert all(r["type"] == "alert" for r in sink)
        assert len(sink) == 1

    def test_series_accumulate_across_rounds(self):
        monitor, _, _ = make_monitor([])
        for t in range(3):
            monitor.begin_round(t, [0])
            monitor.observe_client(0, loss=float(t))
            monitor.end_round(t)
        assert monitor.clients[0].values("loss") == [0.0, 1.0, 2.0]
        assert monitor.clients[0].last("loss") == 2.0
        assert monitor.clients[0].sampled_count == 3
        assert monitor.clients[0].survived_count == 3


class TestMonitorPlumbing:
    def test_default_detectors_installed(self):
        monitor = HealthMonitor()
        names = {d.name for d in monitor.detectors}
        assert names == {
            "nan_loss",
            "loss_spike",
            "accuracy_divergence",
            "straggler",
            "dead_client",
        }
        # fresh state per call
        assert default_detectors()[1] is not default_detectors()[1]

    def test_summary_counts_alerts_by_detector(self):
        monitor, _, _ = make_monitor([NaNLossDetector()])
        monitor.begin_round(0, [0, 1])
        monitor.observe_client(0, loss=float("nan"))
        monitor.observe_client(1, loss=float("nan"))
        summary = monitor.summary()
        assert summary["type"] == "health_summary"
        assert summary["alerts"] == 2
        assert summary["alerts_by_detector"] == {"nan_loss": 2}

    def test_on_alert_callback_enables_quarantine(self):
        """The documented reaction hook: a round loop can exclude clients
        that alerted critically from aggregation."""
        quarantined = set()

        def react(alert):
            if alert["severity"] == "critical":
                quarantined.add(alert["client"])

        monitor = HealthMonitor(detectors=[NaNLossDetector()], on_alert=react)
        monitor.begin_round(0, [0, 1, 2])
        monitor.observe_client(0, loss=0.5)
        monitor.observe_client(1, loss=float("nan"))
        uploading = [k for k in [0, 1, 2] if k not in quarantined]
        assert uploading == [0, 2]

    def test_concurrent_observe_is_thread_safe(self):
        monitor, sink, _ = make_monitor([NaNLossDetector()])
        monitor.begin_round(0, list(range(32)))

        def work(k):
            for _ in range(50):
                monitor.observe_client(k, loss=0.1 * k, duration_s=0.01)

        threads = [threading.Thread(target=work, args=(k,)) for k in range(32)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        monitor.end_round(0)
        records = [r for r in sink if r["type"] == "client_round"]
        assert len(records) == 32
        assert monitor.alerts == []
        assert all(math.isfinite(r["loss"]) for r in records)

    def test_alerts_for_filters_by_client(self):
        monitor, _, _ = make_monitor([NaNLossDetector()])
        monitor.begin_round(0, [0, 1])
        monitor.observe_client(1, loss=float("nan"))
        assert monitor.alerts_for(0) == []
        assert len(monitor.alerts_for(1)) == 1

"""End-to-end telemetry over a real FedClassAvg run (and the CLI flag)."""

import numpy as np
import pytest

from repro import telemetry
from repro.core import FedClassAvg
from repro.federated import FaultInjector, ThreadExecutor


@pytest.fixture
def tiny_algo(micro_federation):
    clients, _ = micro_federation
    return FedClassAvg(clients, rho=0.1, seed=0)


class TestRunTelemetry:
    def test_jsonl_covers_required_spans_and_rounds(self, tiny_algo, tmp_path):
        path = str(tmp_path / "run.jsonl")
        tel = telemetry.configure(jsonl=path, profile_ops=True)
        try:
            tiny_algo.run(2)
        finally:
            tel.close()
            telemetry.disable()

        records = telemetry.read_jsonl(path)
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {"round", "broadcast", "local_update", "aggregate"} <= span_names

        rounds = [r for r in records if r["type"] == "round"]
        assert [r["round"] for r in rounds] == [0, 1]
        for r in rounds:
            assert r["bytes_up"] > 0 and r["bytes_down"] > 0
            assert r["bytes"] == r["bytes_up"] + r["bytes_down"]
            assert r["comm_s"] > 0 and r["compute_s"] > 0
            assert r["wall_s"] >= r["compute_s"]
            assert r["participants"] == r["survivors"] == len(tiny_algo.clients)

        ops = [r for r in records if r["type"] == "op_profile"]
        assert len(ops) == 1
        assert ops[0]["ops"]["conv2d"]["forward_calls"] > 0
        assert ops[0]["ops"]["conv2d"]["backward_s"] >= 0.0

        metrics = [r for r in records if r["type"] == "metrics"]
        assert len(metrics) == 1
        assert metrics[0]["counters"]["train.batches"] > 0

    def test_round_span_parents_local_update(self, tiny_algo):
        tel = telemetry.configure()
        try:
            tiny_algo.run(1)
        finally:
            tel.close()
            telemetry.disable()
        spans = {r["name"]: r for r in tel.tracer.finished}
        assert spans["local_update"]["parent_id"] == spans["round"]["span_id"]
        assert spans["broadcast"]["parent_id"] == spans["round"]["span_id"]

    def test_thread_executor_spans_and_task_histogram(self, micro_federation):
        clients, _ = micro_federation
        ex = ThreadExecutor(max_workers=2)
        tel = telemetry.configure()
        try:
            FedClassAvg(clients, rho=0.1, seed=0, executor=ex).run(1)
        finally:
            ex.shutdown()
            tel.close()
            telemetry.disable()
        # one local_update span per client, recorded from worker threads
        assert tel.tracer.total("local_update")[0] == len(clients)
        assert tel.metrics.histogram("executor.task_s").count == len(clients)

    def test_fault_injection_survivor_accounting(self, micro_federation):
        clients, _ = micro_federation
        algo = FedClassAvg(clients, rho=0.1, seed=0, fault_injector=FaultInjector(0.5, seed=1))
        tel = telemetry.configure()
        try:
            algo.run(2)
        finally:
            tel.close()
            telemetry.disable()
        dropped = algo.fault_injector.dropped_log
        for r in tel.rounds:
            assert r["survivors"] == r["participants"] - len(dropped[r["round"]])

    def test_disabled_backend_records_nothing(self, tiny_algo):
        telemetry.disable()
        tiny_algo.run(1)
        tel = telemetry.get_telemetry()
        assert not tel.enabled
        assert tel.rounds == []


class TestCliTelemetry:
    def test_cli_flag_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "cli.jsonl")
        rc = main(
            [
                "--algorithm",
                "fedclassavg",
                "--clients",
                "3",
                "--rounds",
                "1",
                "--dataset",
                "fashion_mnist-tiny",
                "--telemetry",
                path,
                "--profile-ops",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-round breakdown" in out and "op profile" in out
        records = telemetry.read_jsonl(path)
        types = {r["type"] for r in records}
        assert {"span", "round", "metrics", "op_profile", "client_round", "health_summary"} <= types
        # the CLI restores the null backend afterwards
        assert not telemetry.get_telemetry().enabled

    def test_op_profiler_is_opt_in(self, tmp_path, capsys):
        """--telemetry alone must not enable the per-op profiler (it is
        documented as opt-in and adds per-op overhead) nor crash the
        summary printing."""
        from repro.cli import main

        path = str(tmp_path / "cli.jsonl")
        rc = main(
            [
                "--clients",
                "3",
                "--rounds",
                "1",
                "--telemetry",
                path,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-round breakdown" in out
        assert "op profile" not in out
        types = {r["type"] for r in telemetry.read_jsonl(path)}
        assert "op_profile" not in types
        assert "round" in types and "client_round" in types


class TestSurvivorLoss:
    def test_round_loss_is_mean_over_survivors_only(self, micro_federation, monkeypatch):
        """Faulted clients' losses must not leak into the reported round loss."""
        from repro.federated import trainer as trainer_mod
        from repro.core import fedclassavg as fca_mod

        clients, _ = micro_federation
        algo = FedClassAvg(clients, rho=0.1, seed=0, fault_injector=FaultInjector(0.5, seed=3))

        # give every client a distinctive, known "loss"
        fake_losses = {c.client_id: float(10 + c.client_id) for c in clients}
        monkeypatch.setattr(
            fca_mod, "local_update", lambda client, *a, **k: fake_losses[client.client_id]
        )
        monkeypatch.setattr(
            trainer_mod, "local_update", lambda client, *a, **k: fake_losses[client.client_id]
        )

        algo.setup()
        sampled = list(range(len(clients)))
        loss = algo.round(0, sampled)
        survivors = algo.last_survivors
        assert survivors is not None and 0 < len(survivors) < len(clients)
        expected = float(np.mean([fake_losses[k] for k in survivors]))
        assert loss == pytest.approx(expected)


class TestHealthIntegration:
    def test_live_run_emits_client_round_records_with_all_signals(
        self, tiny_algo, tmp_path
    ):
        """A plain instrumented run produces per-client records carrying
        loss, grad norm, classifier drift, update norm, uplink bytes,
        duration, and (on eval rounds) accuracy."""
        path = str(tmp_path / "run.jsonl")
        tel = telemetry.configure(jsonl=path)
        try:
            tiny_algo.run(2)
        finally:
            tel.close()
            telemetry.disable()

        records = telemetry.read_jsonl(path)
        client_rounds = [r for r in records if r["type"] == "client_round"]
        n = len(tiny_algo.clients)
        assert len(client_rounds) == 2 * n
        for r in client_rounds:
            assert r["sampled"] is True and r["survived"] is True
            assert np.isfinite(r["loss"]) and r["loss"] > 0
            assert np.isfinite(r["grad_norm"]) and r["grad_norm"] > 0
            assert r["drift"] > 0  # local training moved C_k off the broadcast C
            assert r["update_norm"] >= r["drift"] * 0.999
            assert r["bytes_up"] > 0
            assert r["duration_s"] > 0
            assert 0.0 <= r["acc"] <= 1.0  # eval_every=1: every round evaluated
        summary = [r for r in records if r["type"] == "health_summary"]
        assert len(summary) == 1
        assert summary[0]["clients"] == n

    def test_round_record_carries_mean_acc_and_evaluated(self, tiny_algo):
        tel = telemetry.configure()
        try:
            history = tiny_algo.run(2)
        finally:
            tel.close()
            telemetry.disable()
        for t, r in enumerate(tel.rounds):
            assert r["evaluated"] is True
            assert r["mean_acc"] == pytest.approx(history.rounds[t].mean_acc)

    def test_injected_nan_loss_produces_alert_record(self, micro_federation, tmp_path):
        """Poisoning a client's weights with NaN must surface as a
        critical nan_loss alert in the JSONL — through the real
        local_update path, not a synthetic observation.  The admission
        firewall quarantines the resulting NaN upload so the run itself
        survives (aggregation refuses non-finite input outright)."""
        from repro.federated import default_firewall

        clients, _ = micro_federation
        bad = clients[1]
        for p in bad.model.parameters():
            p.data[...] = np.nan
        path = str(tmp_path / "nan.jsonl")
        tel = telemetry.configure(jsonl=path)
        try:
            FedClassAvg(clients, rho=0.1, seed=0, firewall=default_firewall()).run(1)
        finally:
            tel.close()
            telemetry.disable()
        alerts = [r for r in telemetry.read_jsonl(path) if r["type"] == "alert"]
        nan_alerts = [a for a in alerts if a["detector"] == "nan_loss"]
        assert nan_alerts, f"expected a nan_loss alert, got {alerts}"
        assert any(a["client"] == bad.client_id for a in nan_alerts)
        assert all(a["severity"] == "critical" for a in nan_alerts)

    def test_injected_straggler_produces_alert_record(self, micro_federation, tmp_path):
        """Slowing one client's optimizer down must trip the straggler
        detector through the real local_update span timing."""
        import time as _time

        from repro.telemetry import HealthMonitor, StragglerDetector

        clients, _ = micro_federation
        slow = clients[2]
        orig_step = slow.optimizer.step

        def slow_step():
            _time.sleep(0.05)
            orig_step()

        slow.optimizer.step = slow_step
        path = str(tmp_path / "straggler.jsonl")
        monitor = HealthMonitor(detectors=[StragglerDetector(ratio=2.0, min_clients=3)])
        tel = telemetry.configure(jsonl=path, health=monitor)
        try:
            FedClassAvg(clients, rho=0.1, seed=0).run(1)
        finally:
            tel.close()
            telemetry.disable()
        alerts = [r for r in telemetry.read_jsonl(path) if r["type"] == "alert"]
        straggler = [a for a in alerts if a["detector"] == "straggler"]
        assert [a["client"] for a in straggler] == [slow.client_id]

    def test_on_alert_callback_fires_during_run(self, micro_federation):
        from repro.federated import default_firewall

        clients, _ = micro_federation
        for p in clients[0].model.parameters():
            p.data[...] = np.nan
        seen = []
        tel = telemetry.configure(on_alert=seen.append)
        try:
            FedClassAvg(clients, rho=0.1, seed=0, firewall=default_firewall()).run(1)
        finally:
            tel.close()
            telemetry.disable()
        assert any(a["detector"] == "nan_loss" and a["client"] == 0 for a in seen)

    def test_health_disabled_emits_no_health_records(self, tiny_algo, tmp_path):
        path = str(tmp_path / "nohealth.jsonl")
        tel = telemetry.configure(jsonl=path, health=False)
        try:
            tiny_algo.run(1)
        finally:
            tel.close()
            telemetry.disable()
        types = {r["type"] for r in telemetry.read_jsonl(path)}
        assert "client_round" not in types
        assert "alert" not in types
        assert "health_summary" not in types

"""LogBucketHistogram: bounded-error percentiles with bounded memory.

The geometric bucket layout (16 buckets per octave) promises every
percentile lands within ``sqrt(growth) - 1`` ≈ 4.4% relative error of
the exact nearest-rank quantile, for *any* input distribution.  These
tests hold it to that bound on adversarial shapes, and pin the algebra
the runtime relies on: merge is exact count addition (commutative,
associative, equivalent to concatenating the streams), and the dict
form round-trips through JSON without drift.
"""

import json
import math

import numpy as np
import pytest

from repro.telemetry import LogBucketHistogram

# one half-bucket of geometric slack, padded for float roundoff
REL_TOL = math.sqrt(LogBucketHistogram.GROWTH) - 1.0 + 1e-6


def exact_percentile(values, p):
    """Nearest-rank quantile: the value at rank ceil(p/100 * n)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def fill(values, name="lat"):
    h = LogBucketHistogram(name)
    for v in values:
        h.observe(v)
    return h


ADVERSARIAL = {
    # heavy right tail spanning ~6 orders of magnitude
    "lognormal": np.random.default_rng(0).lognormal(-7.0, 2.0, 5000),
    # uniform across one decade
    "uniform": np.random.default_rng(1).uniform(1e-4, 1e-3, 5000),
    # bimodal: fast path ~100µs, straggler path ~2s
    "bimodal": np.concatenate(
        [
            np.random.default_rng(2).normal(1e-4, 1e-5, 4500).clip(min=1e-6),
            np.random.default_rng(3).normal(2.0, 0.2, 500).clip(min=1e-6),
        ]
    ),
    # point mass: every sample identical
    "constant": np.full(1000, 3.2e-3),
    # geometric ladder hitting many distinct buckets exactly
    "ladder": np.array([10.0 ** (-6 + i / 100.0) for i in range(600)]),
}


class TestPercentileAccuracy:
    @pytest.mark.parametrize("dist", sorted(ADVERSARIAL))
    @pytest.mark.parametrize("p", [1, 25, 50, 90, 95, 99, 99.9])
    def test_within_geometric_bound(self, dist, p):
        values = ADVERSARIAL[dist]
        h = fill(values)
        got = h.percentile(p)
        want = exact_percentile(values, p)
        assert got == pytest.approx(want, rel=REL_TOL)

    def test_min_max_mean_are_exact(self):
        values = ADVERSARIAL["lognormal"]
        h = fill(values)
        assert h.min == pytest.approx(float(values.min()))
        assert h.max == pytest.approx(float(values.max()))
        assert h.total / h.count == pytest.approx(float(values.mean()))

    def test_bounded_memory_on_huge_streams(self):
        # 5000 lognormal samples span < a few hundred buckets, not 5000
        h = fill(ADVERSARIAL["lognormal"])
        assert len(h.to_dict()["buckets"]) < 300


class TestEdges:
    def test_empty(self):
        h = LogBucketHistogram("lat")
        assert h.count == 0
        assert h.percentile(50) == 0.0
        s = h.summary()
        assert s["count"] == 0 and s["p99"] == 0.0

    def test_single_sample(self):
        h = fill([2.5e-3])
        for p in (1, 50, 99.9):
            assert h.percentile(p) == pytest.approx(2.5e-3, rel=REL_TOL)
        s = h.summary()
        assert s["count"] == 1
        assert s["min"] == s["max"] == pytest.approx(2.5e-3)

    def test_zero_and_subnormal_clamp_to_first_bucket(self):
        h = fill([0.0, -1.0, 1e-300])
        assert h.count == 3
        assert h.percentile(99) <= LogBucketHistogram.MIN_VALUE * 2


class TestMerge:
    def test_merge_equals_concatenation(self):
        a_vals = ADVERSARIAL["uniform"][:2000]
        b_vals = ADVERSARIAL["bimodal"][:2000]
        a, b = fill(a_vals, "a"), fill(b_vals, "b")
        a.merge(b)
        both = fill(np.concatenate([a_vals, b_vals]))
        assert a.to_dict()["buckets"] == both.to_dict()["buckets"]
        assert a.count == both.count
        for p in (50, 95, 99):
            assert a.percentile(p) == both.percentile(p)

    def test_commutative(self):
        a1, b1 = fill([1e-3, 2e-3], "x"), fill([5e-3], "x")
        a2, b2 = fill([1e-3, 2e-3], "x"), fill([5e-3], "x")
        a1.merge(b1)
        b2.merge(a2)
        assert a1.to_dict()["buckets"] == b2.to_dict()["buckets"]

    def test_associative(self):
        vals = [[1e-4, 2e-4], [3e-3], [0.5, 0.7, 0.9]]
        left = fill(vals[0], "x")
        left.merge(fill(vals[1], "x"))
        left.merge(fill(vals[2], "x"))
        bc = fill(vals[1], "x")
        bc.merge(fill(vals[2], "x"))
        right = fill(vals[0], "x")
        right.merge(bc)
        ld, rd = left.to_dict(), right.to_dict()
        # bucket counts are integers — exactly associative; the float
        # running total is only associative up to summation order
        assert ld["buckets"] == rd["buckets"]
        assert ld["count"] == rd["count"]
        assert ld["min"] == rd["min"] and ld["max"] == rd["max"]
        assert ld["total"] == pytest.approx(rd["total"])

    def test_merge_empty_is_identity(self):
        h = fill([1e-3, 2e-3])
        before = h.to_dict()
        h.merge(LogBucketHistogram("other"))
        assert h.to_dict() == before


class TestSerde:
    def test_json_round_trip_is_exact(self):
        h = fill(ADVERSARIAL["lognormal"])
        wire = json.dumps(h.to_dict())
        back = LogBucketHistogram.from_dict(json.loads(wire))
        assert back.to_dict() == h.to_dict()
        assert back.count == h.count
        for p in (1, 50, 95, 99, 99.9):
            assert back.percentile(p) == h.percentile(p)

    def test_summary_shape(self):
        s = fill([1e-3, 2e-3, 4e-3]).summary()
        assert set(s) == {"count", "total", "min", "max", "mean", "p50", "p95", "p99"}
        assert s["count"] == 3
        assert s["min"] <= s["p50"] <= s["p95"] <= s["p99"] <= s["max"] * (1 + REL_TOL)

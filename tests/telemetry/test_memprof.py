"""Autograd memory profiler: region accounting, graph peaks, op attribution."""

import gc

import numpy as np

from repro import telemetry
from repro.telemetry import MemoryProfiler, active_memprof, format_mem_summary
from repro.tensor import Tensor


class TestRegionAccounting:
    def test_alloc_bytes_and_count(self):
        prof = MemoryProfiler()
        prof.activate()
        try:
            with prof.client_round(client=3, round_idx=1) as region:
                a = Tensor(np.zeros((10, 10)))  # 800 bytes of float64
                b = Tensor(np.zeros(25))  # 200 bytes
            assert region.alloc_bytes == 800 + 200
            assert region.alloc_count == 2
            assert region.peak_live_bytes == 1000
            del a, b
        finally:
            prof.deactivate()

    def test_peak_tracks_frees(self):
        """The peak is simultaneous-live bytes, not total allocated bytes."""
        prof = MemoryProfiler()
        prof.activate()
        try:
            with prof.client_round(client=0, round_idx=0) as region:
                for _ in range(5):
                    t = Tensor(np.zeros(128))  # 1 KiB each, one live at a time
                    del t
                    gc.collect()
            assert region.alloc_bytes == 5 * 1024
            assert region.peak_live_bytes < 5 * 1024
        finally:
            prof.deactivate()

    def test_backward_graph_high_water(self):
        prof = MemoryProfiler()
        prof.activate()
        try:
            with prof.client_round(client=0, round_idx=0) as region:
                x = Tensor(np.ones((8, 8)), requires_grad=True)
                y = ((x * 2.0) + 1.0).sum()
                y.backward()
            # the tape retained at least x, the two intermediates, and y
            assert region.graph_peak_bytes >= 2 * x.data.nbytes
        finally:
            prof.deactivate()

    def test_record_emitted_to_sink_on_close(self):
        seen = []
        prof = MemoryProfiler(sink=seen.append)
        prof.activate()
        try:
            with prof.client_round(client=2, round_idx=5):
                Tensor(np.zeros(4))
        finally:
            prof.deactivate()
        assert len(seen) == 1 and len(prof.records) == 1
        rec = seen[0]
        assert rec["type"] == "mem"
        assert rec["client"] == 2 and rec["round"] == 5
        assert rec["mem_peak"] == 32 and rec["alloc_count"] == 1
        assert prof.peak_by_client() == {2: 32}

    def test_op_attribution_via_profiled_op(self):
        prof = MemoryProfiler()
        prof.activate()
        try:
            with prof.client_round(client=0, round_idx=0) as region:
                a = Tensor(np.ones((16, 16)), requires_grad=True)
                b = Tensor(np.ones((16, 16)))
                (a @ b).sum().backward()
            assert "matmul" in region.op_stats
            calls, alloc, peak = region.op_stats["matmul"]
            assert calls >= 1 and alloc > 0 and peak > 0
        finally:
            prof.deactivate()


class TestIdleAndDisabled:
    def test_inactive_profiler_costs_nothing(self):
        assert active_memprof() is None
        t = Tensor(np.zeros(8))  # must not raise or record anywhere
        assert t.data.nbytes == 64

    def test_active_without_region_records_nothing(self):
        """The enabled-but-idle state: hook fires, accounting skipped."""
        prof = MemoryProfiler()
        prof.activate()
        try:
            Tensor(np.zeros((100, 100)))
            x = Tensor(np.ones(4), requires_grad=True)
            (x * 2.0).sum().backward()
        finally:
            prof.deactivate()
        assert prof.records == []

    def test_regions_are_per_thread(self):
        import threading

        prof = MemoryProfiler()
        prof.activate()
        try:
            done = threading.Event()

            def other_thread():
                Tensor(np.zeros(1024))  # no region on this thread
                done.set()

            with prof.client_round(client=0, round_idx=0) as region:
                th = threading.Thread(target=other_thread)
                th.start()
                th.join()
                assert done.is_set()
            assert region.alloc_bytes == 0
        finally:
            prof.deactivate()


class TestFacadeIntegration:
    def test_configure_memory_activates_and_close_deactivates(self):
        tel = telemetry.configure(memory=True, health=False)
        try:
            assert active_memprof() is tel.memory
        finally:
            tel.close()
            telemetry.disable()
        assert active_memprof() is None

    def test_format_mem_summary(self):
        records = [
            {
                "type": "mem",
                "round": 0,
                "client": 1,
                "alloc_bytes": 2048,
                "alloc_count": 4,
                "mem_peak": 1024,
                "graph_peak_bytes": 512,
                "ops": {},
            }
        ]
        table = format_mem_summary(records)
        assert "mem_peak" in table and "1024" in table
        assert "(no memory profile recorded)" in format_mem_summary([])

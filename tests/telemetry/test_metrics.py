"""Metrics registry: instruments, snapshots, thread-safety."""

import threading

from repro.telemetry import MetricsRegistry


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("bytes")
        c.inc()
        c.inc(9)
        assert c.value == 10
        assert reg.counter("bytes") is c  # get-or-create returns the same object

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("survivors")
        g.set(17)
        g.set(4)
        assert g.value == 4.0

    def test_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("task_s")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert abs(s["mean"] - 2.0) < 1e-12

    def test_empty_histogram_summary(self):
        s = MetricsRegistry().histogram("empty").summary()
        assert s == {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self):
        """ThreadExecutor workers record concurrently; no update may vanish."""
        reg = MetricsRegistry()
        n_threads, n_incs = 8, 2000

        def work():
            c = reg.counter("shared")
            h = reg.histogram("obs")
            for _ in range(n_incs):
                c.inc()
                h.observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("shared").value == n_threads * n_incs
        assert reg.histogram("obs").count == n_threads * n_incs

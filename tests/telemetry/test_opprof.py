"""Op-level profiler: attribution, transparency, activation lifecycle."""

import numpy as np

from repro.losses import supcon_loss
from repro.telemetry import OpProfiler, active_profiler, profiled_op
from repro.tensor import Tensor, conv2d, relu, sum_


def small_conv_backward():
    x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 8, 8)), requires_grad=True)
    w = Tensor(np.random.default_rng(1).normal(size=(4, 3, 3, 3)), requires_grad=True)
    loss = sum_(relu(conv2d(x, w)))
    loss.backward()
    return x, w


class TestProfiledOp:
    def test_disabled_profiler_is_transparent(self):
        assert active_profiler() is None
        x, w = small_conv_backward()
        assert x.grad is not None and w.grad is not None

    def test_records_forward_and_backward(self):
        prof = OpProfiler()
        prof.activate()
        try:
            small_conv_backward()
        finally:
            prof.deactivate()
        totals = prof.totals()
        assert totals["conv2d"]["forward_calls"] == 1
        assert totals["conv2d"]["backward_calls"] == 1
        assert totals["conv2d"]["forward_s"] >= 0.0
        assert totals["relu"]["backward_calls"] == 1

    def test_profiling_does_not_change_gradients(self):
        np.random.seed(0)
        x1, w1 = small_conv_backward()
        prof = OpProfiler()
        prof.activate()
        try:
            x2, w2 = small_conv_backward()
        finally:
            prof.deactivate()
        assert np.allclose(x1.grad, x2.grad)
        assert np.allclose(w1.grad, w2.grad)

    def test_composite_ops_are_forward_only(self):
        prof = OpProfiler()
        prof.activate()
        try:
            a = Tensor(np.random.default_rng(2).normal(size=(6, 4)), requires_grad=True)
            b = Tensor(np.random.default_rng(3).normal(size=(6, 4)), requires_grad=True)
            loss = supcon_loss(a, b, np.array([0, 0, 1, 1, 2, 2]))
            loss.backward()
        finally:
            prof.deactivate()
        totals = prof.totals()
        assert totals["supcon"]["forward_calls"] == 1
        # backward time lands on the constituent leaf ops, never on the composite
        assert totals["supcon"]["backward_calls"] == 0

    def test_deactivate_only_clears_own_registration(self):
        a, b = OpProfiler(), OpProfiler()
        a.activate()
        b.activate()
        a.deactivate()  # a is not active; b must stay registered
        assert active_profiler() is b
        b.deactivate()
        assert active_profiler() is None

    def test_custom_decorated_function(self):
        calls = []

        @profiled_op("custom")
        def op(v):
            calls.append(v)
            return v * 2

        assert op(3) == 6  # no profiler: plain passthrough
        prof = OpProfiler()
        prof.activate()
        try:
            assert op(4) == 8
        finally:
            prof.deactivate()
        assert prof.totals()["custom"]["forward_calls"] == 1
        assert calls == [3, 4]

"""Flight recorder capture/persistence and deterministic replay.

The class ``TestAlertToReplayPipeline`` is the end-to-end deep-dive demo:
a client whose weights are NaN-poisoned trips the NaN-loss detector
mid-round, the armed recorder persists a replay bundle, and re-executing
the bundle through the production trainer reproduces the recorded
per-batch loss/grad-norm trajectories bit-exactly.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro import telemetry
from repro.core import FedClassAvg
from repro.federated import build_federation, default_firewall
from repro.telemetry import FlightRecorder, read_jsonl
from repro.telemetry.recorder import BUNDLE_FORMAT, decode_state, encode_state
from repro.telemetry.replay import format_replay_result, load_bundle, replay_bundle


class TestStateCodec:
    def test_roundtrip(self):
        state = {"w": np.arange(6, dtype=np.float64).reshape(2, 3), "b": np.zeros(3)}
        back = decode_state(encode_state(state))
        assert set(back) == {"w", "b"}
        for k in state:
            assert np.array_equal(back[k], state[k])


class TestFlightRecorder:
    def _capture_one(self, micro_federation, rec):
        clients, _ = micro_federation
        algo = FedClassAvg(clients, seed=0)
        rec.begin_round(0, broadcast_state={"head.weight": np.ones((4, 2))})
        rec.capture_client(clients[1], epochs=1, config=algo.config)
        rec.record_trajectory(1, [1.0, 0.5], [2.0, 1.5])
        return clients

    def test_capture_and_trajectory(self, micro_federation):
        rec = FlightRecorder(out_dir=None)
        self._capture_one(micro_federation, rec)
        assert rec.trajectory(1) == ([1.0, 0.5], [2.0, 1.5])
        assert rec.trajectory(99) == (None, None)

    def test_begin_round_drops_previous_captures(self, micro_federation):
        rec = FlightRecorder(out_dir=None)
        self._capture_one(micro_federation, rec)
        rec.begin_round(1)
        assert rec.trajectory(1) == (None, None)

    def test_dump_bundle_format(self, micro_federation, tmp_path):
        rec = FlightRecorder(out_dir=None)
        rec.set_run_config(algorithm="fedclassavg")
        self._capture_one(micro_federation, rec)
        path = str(tmp_path / "bundle.json")
        rec.dump_bundle(1, path)
        bundle = load_bundle(path)
        assert bundle["format"] == BUNDLE_FORMAT
        assert bundle["client"] == 1 and bundle["round"] == 0
        assert bundle["run_config"]["algorithm"] == "fedclassavg"
        assert bundle["trajectory"]["losses"] == [1.0, 0.5]
        assert "loader" in bundle["rng"] and "global" in bundle["rng"]
        broadcast = decode_state(bundle["broadcast_state"])
        assert np.array_equal(broadcast["head.weight"], np.ones((4, 2)))

    def test_load_bundle_rejects_other_formats(self, tmp_path):
        path = tmp_path / "not_a_bundle.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a replay bundle"):
            load_bundle(str(path))

    def test_on_alert_persists_once_per_client_round(self, micro_federation, tmp_path):
        seen = []
        rec = FlightRecorder(out_dir=str(tmp_path / "b"), sink=seen.append)
        self._capture_one(micro_federation, rec)
        alert = {"type": "alert", "round": 0, "client": 1, "detector": "nan_loss"}
        first = rec.on_alert(alert)
        assert first is not None
        assert rec.on_alert(alert) is None  # deduplicated
        assert rec.on_alert({"type": "alert", "round": 0, "client": None}) is None
        assert rec.on_alert({"type": "alert", "round": 0, "client": 3}) is None  # no capture
        assert rec.bundles_written == [first]
        assert len(seen) == 1 and seen[0]["type"] == "replay_bundle"
        assert seen[0]["detector"] == "nan_loss"

    def test_max_bundles_budget(self, micro_federation, tmp_path):
        clients, _ = micro_federation
        algo = FedClassAvg(clients, seed=0)
        rec = FlightRecorder(out_dir=str(tmp_path / "b"), max_bundles=1)
        rec.begin_round(0)
        for k in (0, 1):
            rec.capture_client(clients[k], epochs=1, config=algo.config)
        assert rec.on_alert({"client": 0, "round": 0}) is not None
        assert rec.on_alert({"client": 1, "round": 0}) is None  # budget spent
        assert len(rec.bundles_written) == 1


def _poison(client):
    """NaN-poison a client's whole model.

    Setup excludes a non-finite initial classifier from the init average
    (and the firewall quarantines the client's NaN upload), so the
    poison stays local: only this client's forward pass — and therefore
    its loss — goes NaN, tripping the NaN-loss detector for exactly the
    poisoned client.  Every parameter is NaNed (not just the classifier)
    because the broadcast overwrites the classifier with the healthy
    global state at round start.
    """
    for p in client.model.parameters():
        p.data[...] = np.nan


class TestAlertToReplayPipeline:
    def test_nan_alert_writes_bundle_and_replay_reproduces(self, micro_spec, tmp_path):
        out_dir = str(tmp_path / "bundles")
        jsonl = str(tmp_path / "run.jsonl")

        tel = telemetry.configure(jsonl=jsonl, recorder=out_dir)
        try:
            tel.recorder.set_run_config(spec=asdict(micro_spec), algorithm="fedclassavg")
            clients, _ = build_federation(micro_spec)
            _poison(clients[2])
            algo = FedClassAvg(clients, seed=0, firewall=default_firewall())
            algo.run(1)
            bundles = list(tel.recorder.bundles_written)
        finally:
            tel.close()
            telemetry.disable()

        # the poisoned client alerted; replay its bundle
        assert len(bundles) >= 1
        path = next(p for p in bundles if "client2" in p)
        bundle = load_bundle(path)
        assert bundle["client"] == 2 and bundle["round"] == 0
        recorded_losses = bundle["trajectory"]["losses"]
        assert recorded_losses and not all(np.isfinite(recorded_losses))
        # the telemetry stream links the alert to its bundle
        records = read_jsonl(jsonl)
        links = [r for r in records if r.get("type") == "replay_bundle"]
        assert any(r["client"] == 2 and r["path"] == path for r in links)

        # deterministic replay: the re-executed round reproduces bit-exactly
        result = replay_bundle(bundle)
        assert result["loss_match"] is True
        assert result["grad_norm_match"] is True
        assert result["match"] is True
        assert result["replayed_losses"] is not None
        assert len(result["replayed_losses"]) == len(recorded_losses)
        assert "REPRODUCED" in format_replay_result(result)

    def test_replay_detects_divergence(self, micro_spec, tmp_path):
        """A tampered recording must be reported as NOT reproduced."""
        out_dir = str(tmp_path / "bundles")
        tel = telemetry.configure(jsonl=None, recorder=out_dir)
        try:
            tel.recorder.set_run_config(spec=asdict(micro_spec), algorithm="fedclassavg")
            clients, _ = build_federation(micro_spec)
            _poison(clients[1])
            FedClassAvg(clients, seed=0, firewall=default_firewall()).run(1)
            bundles = list(tel.recorder.bundles_written)
        finally:
            tel.close()
            telemetry.disable()

        bundle = load_bundle(next(p for p in bundles if "client1" in p))
        bundle["trajectory"]["losses"] = [0.123] * len(bundle["trajectory"]["losses"])
        bundle["trajectory"]["grad_norms"] = None
        result = replay_bundle(bundle)
        assert result["loss_match"] is False
        assert result["match"] is False
        assert "NOT REPRODUCED" in format_replay_result(result)

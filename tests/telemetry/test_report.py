"""Report rendering and run-diff/gate tests (pure record-dict level)."""

import pytest

from repro.telemetry.report import (
    binary_sparkline,
    diff_runs,
    format_diff,
    gate_violations,
    render_report,
    sparkline,
    summarize_run,
)


def round_rec(t, mean_acc=None, train_loss=1.0, up=100, down=100, **kw):
    return {
        "type": "round",
        "round": t,
        "algorithm": "fedclassavg",
        "wall_s": 1.0,
        "compute_s": 0.8,
        "comm_s": 0.1,
        "bytes": up + down,
        "bytes_up": up,
        "bytes_down": down,
        "participants": 2,
        "survivors": 2,
        "train_loss": train_loss,
        "mean_acc": mean_acc,
        "evaluated": mean_acc is not None,
        **kw,
    }


def client_rec(t, k, **fields):
    return {
        "type": "client_round",
        "round": t,
        "client": k,
        "sampled": True,
        "survived": True,
        **fields,
    }


def make_run(accs=(0.3, 0.5, 0.6), up=100, alerts=0):
    records = []
    for t, acc in enumerate(accs):
        records.append(round_rec(t, mean_acc=acc, up=up, down=up))
        records.append(client_rec(t, 0, loss=1.0 - 0.1 * t, acc=acc, duration_s=0.1, bytes_up=up))
        records.append(client_rec(t, 1, loss=2.0 - 0.1 * t, acc=acc, duration_s=0.3, bytes_up=up))
    for i in range(alerts):
        records.append(
            {
                "type": "alert",
                "round": i,
                "client": 0,
                "detector": "loss_spike",
                "severity": "warning",
                "message": f"synthetic alert {i}",
            }
        )
    return records


class TestSparkline:
    def test_maps_range_to_blocks(self):
        s = sparkline([0.0, 0.5, 1.0])
        assert s[0] == "▁" and s[-1] == "█" and len(s) == 3

    def test_resamples_long_series(self):
        assert len(sparkline(list(range(100)), width=12)) == 12

    def test_none_and_nan_render_dots(self):
        assert sparkline([None, 1.0, float("nan")]) == "·▅·"

    def test_flat_series_is_mid_level(self):
        assert set(sparkline([2.0, 2.0, 2.0])) == {"▅"}

    def test_empty(self):
        assert sparkline([]) == ""


class TestBinarySparkline:
    def test_fixed_scale(self):
        # always-0 and always-1 series must render differently (the
        # normalized sparkline would show ▅▅ for both)
        assert binary_sparkline([0.0, 0.0]) == "▁▁"
        assert binary_sparkline([1.0, 1.0]) == "██"
        assert binary_sparkline([0.0, 1.0, None]) == "▁█·"

    def test_resamples_long_series(self):
        assert len(binary_sparkline([1.0] * 100, width=12)) == 12


class TestSummarizeRun:
    def test_acc_aggregates_skip_unevaluated_rounds(self):
        records = [round_rec(0, mean_acc=None), round_rec(1, mean_acc=0.7), round_rec(2, mean_acc=0.6)]
        s = summarize_run(records)
        assert s.final_acc() == 0.6
        assert s.best_acc() == 0.7

    def test_empty_run(self):
        s = summarize_run([])
        assert s.final_acc() is None and s.best_acc() is None and s.total_bytes() == 0

    def test_client_rows(self):
        s = summarize_run(make_run(alerts=2))
        rows = {r["client"]: r for r in s.client_rows()}
        assert rows[0]["sampled"] == 3 and rows[0]["survived"] == 3
        assert rows[0]["alerts"] == 2 and rows[1]["alerts"] == 0
        assert rows[0]["bytes_up"] == 300
        assert rows[1]["mean_duration_s"] == pytest.approx(0.3)


class TestRenderReport:
    def test_dashboard_sections(self):
        out = render_report(make_run(alerts=1))
        assert "run: fedclassavg" in out
        assert "per-round breakdown:" in out
        assert "per-client health:" in out
        assert "alerts (1):" in out
        assert "synthetic alert 0" in out
        assert "loss trend" in out and "acc trend" in out

    def test_no_alerts_renders_placeholder(self):
        assert "(no alerts)" in render_report(make_run())

    def test_alerting_client_is_flagged_in_table(self):
        out = render_report(make_run(alerts=1))
        table = out.split("per-client health:")[1].split("alerts (")[0]
        rows = [line for line in table.splitlines() if line.rstrip().endswith("!")]
        assert len(rows) == 1 and rows[0].strip().startswith("0")

    def test_rejection_column_only_when_someone_was_quarantined(self):
        plain = render_report(make_run())
        assert "rej trend" not in plain
        records = make_run()
        # client 1 is rejected in rounds 0 and 2, client 0 never
        for rec in records:
            if rec.get("type") == "client_round":
                rec["rejected"] = (
                    1.0 if rec["client"] == 1 and rec["round"] != 1 else 0.0
                )
        records.append(
            {
                "type": "alert",
                "round": 0,
                "client": 1,
                "detector": "update_rejected",
                "severity": "warning",
                "validator": "finite",
                "message": "client 1's round-0 update rejected by finite: nan",
            }
        )
        out = render_report(records)
        table = out.split("per-client health:")[1].split("alerts (")[0]
        assert "rej trend" in table
        row0, row1 = [
            line for line in table.splitlines() if line.strip().startswith(("0", "1"))
        ]
        assert "▁▁▁" in row0 and "█▁█" in row1

    def test_alert_rollup_line(self):
        records = make_run(alerts=2)
        records.append(
            {
                "type": "alert",
                "round": 1,
                "client": 1,
                "detector": "update_rejected",
                "severity": "warning",
                "message": "quarantined",
            }
        )
        records.append(
            {
                "type": "alert",
                "round": 1,
                "client": 1,
                "detector": "client_lost",
                "severity": "critical",
                "message": "gone",
            }
        )
        out = render_report(records)
        assert "alerts by severity: critical=1 warning=3 · update_rejected=1" in out

    def test_no_rollup_without_alerts(self):
        assert "alerts by severity" not in render_report(make_run())

    def test_mem_peak_column_only_with_mem_records(self):
        plain = render_report(make_run())
        assert "mem_peak" not in plain
        records = make_run() + [
            {"type": "mem", "round": 0, "client": 0, "mem_peak": 4096, "alloc_count": 7}
        ]
        out = render_report(records)
        table = out.split("per-client health:")[1].split("alerts (")[0]
        assert "mem_peak" in table and "4 KB" in table


class TestDiff:
    def test_deltas_are_candidate_minus_baseline(self):
        diff = diff_runs(make_run(accs=(0.3, 0.6)), make_run(accs=(0.3, 0.5)))
        assert diff["final_acc"] == (0.6, 0.5, pytest.approx(-0.1))
        assert diff["alerts"] == (0, 0, 0)

    def test_format_diff_mentions_names(self):
        out = format_diff(diff_runs(make_run(), make_run()), "base.jsonl", "new.jsonl")
        assert "base.jsonl" in out and "new.jsonl" in out
        assert "final_acc" in out and "total_bytes" in out

    def test_missing_acc_renders_dash(self):
        diff = diff_runs([round_rec(0, mean_acc=None)], make_run())
        assert diff["final_acc"][0] is None
        assert "-" in format_diff(diff)


class TestGate:
    def test_passes_identical_runs(self):
        assert gate_violations(diff_runs(make_run(), make_run())) == []

    def test_fails_on_accuracy_regression(self):
        diff = diff_runs(make_run(accs=(0.3, 0.6)), make_run(accs=(0.3, 0.5)))
        violations = gate_violations(diff, acc_drop_tol=0.01)
        assert len(violations) == 1 and "regressed" in violations[0]

    def test_tolerates_small_regression(self):
        diff = diff_runs(make_run(accs=(0.3, 0.6)), make_run(accs=(0.3, 0.595)))
        assert gate_violations(diff, acc_drop_tol=0.01) == []

    def test_fails_on_byte_inflation(self):
        diff = diff_runs(make_run(up=100), make_run(up=150))
        violations = gate_violations(diff, bytes_inflate_tol=0.10)
        assert len(violations) == 1 and "inflated" in violations[0]

    def test_new_alerts_gate_is_opt_in(self):
        diff = diff_runs(make_run(), make_run(alerts=3))
        assert gate_violations(diff) == []
        violations = gate_violations(diff, allow_new_alerts=False)
        assert len(violations) == 1 and "alert count" in violations[0]

    def test_improvement_never_fails(self):
        diff = diff_runs(make_run(accs=(0.3, 0.5)), make_run(accs=(0.3, 0.9), up=50))
        assert gate_violations(diff, allow_new_alerts=False) == []


class TestNetworkSection:
    def lat(self, count=4, p50=1e-4, p95=2e-4, p99=3e-4, mx=4e-4):
        return {
            "count": count, "total": count * p50, "min": p50, "max": mx,
            "mean": p50, "p50": p50, "p95": p95, "p99": p99,
        }

    def net_run(self):
        records = make_run()
        for i, r in enumerate(rec for rec in records if rec["type"] == "round"):
            r["phase"] = {
                "broadcast_s": 0.01,
                "compute_s": 0.7,
                "wait_s": 0.2,
                "aggregate_s": 0.001,
            }
        records.append(
            {
                "type": "metrics",
                "counters": {},
                "gauges": {},
                "histograms": {},
                "latencies": {
                    "net.send_s.CLASSIFIER": self.lat(),
                    "net.straggler_wait_s": self.lat(count=2, p50=0.5, p95=0.9, p99=0.9, mx=0.95),
                    "trainer.step_s": self.lat(),  # non-net: excluded
                },
            }
        )
        return records

    def test_absent_without_network_telemetry(self):
        # sim-only / pre-tracing files keep rendering exactly as before
        assert "network:" not in render_report(make_run())

    def test_critical_path_totals(self):
        out = render_report(self.net_run())
        assert "network:" in out
        assert "round critical path (totals over 3 rounds):" in out
        # 3 rounds x 0.7s compute against 3 x 1.0s wall = 70%
        assert "compute" in out and "70.0% of round wall" in out

    def test_wire_latency_table_filters_to_net_metrics(self):
        out = render_report(self.net_run())
        assert "net.send_s.CLASSIFIER" in out
        assert "net.straggler_wait_s" in out
        assert "trainer.step_s" not in out

    def test_latency_units_scale(self):
        out = render_report(self.net_run())
        assert "µs" in out  # 100µs-scale send latencies
        assert "ms" in out or "s" in out  # 0.5s straggler wait

    def test_phases_alone_render_without_latencies(self):
        records = self.net_run()
        records = [r for r in records if r.get("type") != "metrics"]
        out = render_report(records)
        assert "round critical path" in out
        assert "wire latency" not in out

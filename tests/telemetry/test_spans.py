"""Span tracer: nesting, attributes, thread isolation, JSONL sink."""

import json
import threading
import time

from repro.telemetry import JsonlWriter, Tracer, read_jsonl


class TestTracer:
    def test_span_records_duration_and_attrs(self):
        tr = Tracer()
        with tr.span("work", client=3) as sp:
            time.sleep(0.005)
            sp.set(batches=7)
        assert tr.total("work")[0] == 1
        rec = tr.finished[0]
        assert rec["name"] == "work"
        assert rec["dur_s"] >= 0.004
        assert rec["attrs"] == {"client": 3, "batches": 7}

    def test_nesting_sets_parent_ids(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        outer_rec = next(r for r in tr.finished if r["name"] == "outer")
        inner_rec = next(r for r in tr.finished if r["name"] == "inner")
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert outer_rec["parent_id"] is None

    def test_totals_accumulate(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("x"):
                pass
        count, seconds = tr.total("x")
        assert count == 3
        assert seconds >= 0.0
        assert tr.total("missing") == (0, 0.0)

    def test_threads_have_independent_stacks(self):
        """Worker spans must not parent to (or pop) other threads' spans."""
        tr = Tracer()
        barrier = threading.Barrier(2)
        parents = {}

        def work(tag):
            barrier.wait()
            with tr.span(tag) as sp:
                time.sleep(0.01)
                parents[tag] = sp.parent_id

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        # concurrent root spans on different threads have no parent
        assert parents == {"t0": None, "t1": None}
        assert len(tr.finished) == 2

    def test_sink_receives_each_record(self):
        seen = []
        tr = Tracer(sink=seen.append)
        with tr.span("a"):
            pass
        assert len(seen) == 1 and seen[0]["type"] == "span"


class TestJsonl:
    def test_writer_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        w = JsonlWriter(path)
        w.write({"type": "span", "name": "x", "dur_s": 0.25})
        w.write({"type": "round", "round": 0})
        w.close()
        records = read_jsonl(path)
        assert [r["type"] for r in records] == ["span", "round"]
        # every line is standalone-parseable JSON
        with open(path) as fh:
            for line in fh:
                json.loads(line)

    def test_writer_handles_numpy_scalars(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "np.jsonl")
        w = JsonlWriter(path)
        w.write({"v": np.float64(1.5), "n": np.int64(3)})
        w.close()
        assert read_jsonl(path) == [{"v": 1.5, "n": 3}]

    def test_reader_skips_crash_truncated_lines(self, tmp_path):
        """A crash mid-write leaves a torn last line; readers must survive
        it (and any mid-file corruption) with a warning, not a traceback."""
        import pytest

        path = str(tmp_path / "torn.jsonl")
        with open(path, "w") as fh:
            fh.write('{"type": "round", "round": 0}\n')
            fh.write('{"type": "span", "name": "local_u')  # torn mid-record
        with pytest.warns(UserWarning, match="skipping undecodable record"):
            records = read_jsonl(path)
        assert records == [{"type": "round", "round": 0}]

"""Chrome trace export, ASCII Gantt, and cross-thread span attribution."""

import json
import time

from repro import telemetry
from repro.federated.executor import ThreadExecutor
from repro.telemetry import (
    Tracer,
    ascii_gantt,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _synthetic_records():
    """A two-round serial run: round spans with nested local_update lanes."""
    records = []
    sid = iter(range(1, 100))
    t = 1000.0
    for rnd in range(2):
        round_id = next(sid)
        lanes = []
        lane_t = t
        for client in range(3):
            lanes.append(
                {
                    "type": "span",
                    "name": "local_update",
                    "span_id": next(sid),
                    "parent_id": round_id,
                    "thread": "MainThread",
                    "ts": lane_t,
                    "dur_s": 0.1,
                    "attrs": {"round": rnd, "client": client},
                }
            )
            lane_t += 0.1
        records.append(
            {
                "type": "span",
                "name": "round",
                "span_id": round_id,
                "parent_id": None,
                "thread": "MainThread",
                "ts": t,
                "dur_s": 0.3,
                "attrs": {"round": rnd, "algorithm": "fedclassavg"},
            }
        )
        records.extend(lanes)
        t += 0.5
    records.append({"type": "round", "round": 0})  # non-span noise is ignored
    return records


class TestChromeTrace:
    def test_envelope_and_event_mapping(self):
        trace = to_chrome_trace(_synthetic_records())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        ms = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == 8  # 2 rounds + 6 local_updates
        assert any(e["name"] == "process_name" for e in ms)
        assert any(e["name"] == "thread_name" for e in ms)
        lane = next(e for e in xs if e["name"] == "local_update")
        # microseconds, attrs preserved as args, parent linkage kept
        assert lane["ts"] == 1000.0 * 1e6
        assert lane["dur"] == 0.1 * 1e6
        assert lane["args"]["client"] == 0 and lane["args"]["round"] == 0
        assert lane["args"]["parent_id"] == 1

    def test_export_is_schema_valid(self):
        assert validate_chrome_trace(to_chrome_trace(_synthetic_records())) == []

    def test_validator_flags_problems(self):
        assert validate_chrome_trace({}) == ["missing top-level 'traceEvents' array"]
        bad = {
            "traceEvents": [
                {"ph": "X", "pid": 0, "tid": 0, "ts": -5, "dur": "x"},
                {"name": "ok", "ph": "Z", "pid": 0, "tid": 0},
            ]
        }
        problems = validate_chrome_trace(bad)
        assert any("missing required key 'name'" in p for p in problems)
        assert any("invalid 'ts'" in p for p in problems)
        assert any("invalid 'dur'" in p for p in problems)
        assert any("unsupported phase" in p for p in problems)

    def test_export_order_is_stable_under_input_shuffling(self):
        records = _synthetic_records()
        a = to_chrome_trace(records)
        b = to_chrome_trace(list(reversed(records)))
        xs = lambda t: [e for e in t["traceEvents"] if e["ph"] == "X"]  # noqa: E731
        assert xs(a) == xs(b)
        # sorted by start time regardless of completion order
        ts = [e["ts"] for e in xs(a)]
        assert ts == sorted(ts)

    def test_write_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        n = write_chrome_trace(_synthetic_records(), path)
        assert n == 8
        with open(path) as fh:
            trace = json.load(fh)
        assert validate_chrome_trace(trace) == []


class TestAsciiGantt:
    def test_renders_lane_per_client(self):
        chart = ascii_gantt(_synthetic_records(), width=30)
        assert "round 0" in chart and "round 1" in chart
        assert "client 0" in chart and "client 2" in chart
        assert "#" in chart

    def test_no_rounds(self):
        assert "no round spans" in ascii_gantt([{"type": "metrics"}])

    def test_serial_run_renders_staircase(self):
        chart = ascii_gantt(_synthetic_records(), width=30)
        lanes = [ln for ln in chart.splitlines() if "client" in ln]
        # serial lanes start progressively later: leading space grows
        starts = [ln.index("#") for ln in lanes[:3]]
        assert starts == sorted(starts) and starts[0] < starts[2]


class TestTracerUnderThreadExecutor:
    def test_worker_spans_adopt_round_parent_and_context(self):
        tel = telemetry.configure(health=False)
        pool = ThreadExecutor(max_workers=3)
        try:
            with tel.context(round=7, algorithm="fedclassavg"):
                with tel.span("round", round=7) as round_span:

                    def work(k):
                        with telemetry.span("local_update", client=k):
                            time.sleep(0.005)
                        return k

                    assert pool.map(work, [0, 1, 2, 3]) == [0, 1, 2, 3]
        finally:
            pool.shutdown()
            tel.close()
            telemetry.disable()

        lanes = [r for r in tel.tracer.finished if r["name"] == "local_update"]
        assert len(lanes) == 4
        for rec in lanes:
            # parented across the thread boundary…
            assert rec["parent_id"] == round_span.span_id
            # …and carrying the submitting thread's context attributes
            assert rec["attrs"]["round"] == 7
            assert rec["attrs"]["algorithm"] == "fedclassavg"
        assert {r["attrs"]["client"] for r in lanes} == {0, 1, 2, 3}
        # per-thread attribution: the pool actually used worker threads
        threads = {r["thread"] for r in lanes}
        assert all(t != "MainThread" for t in threads)

    def test_concurrent_nesting_stays_per_thread(self):
        tr = Tracer()
        pool = ThreadExecutor(max_workers=4)
        try:
            with tr.span("round") as round_span:
                parent = tr.current_span_id()

                def work(k):
                    with tr.adopt(parent, {"round": 0}):
                        with tr.span("outer", client=k) as outer:
                            with tr.span("inner", client=k) as inner:
                                time.sleep(0.002)
                                return outer.span_id, inner.parent_id

                pairs = pool.map(work, list(range(8)))
        finally:
            pool.shutdown()
        # inner spans parent to their own thread's outer span — never to
        # another worker's span, never to the adopted round directly
        for outer_id, inner_parent in pairs:
            assert inner_parent == outer_id
        outers = [r for r in tr.finished if r["name"] == "outer"]
        assert all(r["parent_id"] == round_span.span_id for r in outers)
        assert all(r["attrs"]["round"] == 0 for r in outers)

    def test_export_ordering_stable_despite_completion_order(self):
        """Spans finish in racy order; the chrome export is deterministic."""
        tr = Tracer()
        pool = ThreadExecutor(max_workers=4)
        try:

            def work(k):
                # later-submitted tasks sleep less → finish first
                with tr.span("task", k=k):
                    time.sleep(0.02 - 0.004 * k)

            pool.map(work, list(range(4)))
        finally:
            pool.shutdown()
        trace = to_chrome_trace(tr.finished)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        ts = [e["ts"] for e in xs]
        assert ts == sorted(ts)
        assert validate_chrome_trace(trace) == []

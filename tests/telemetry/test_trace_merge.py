"""Cross-process trace merging: clock alignment, parenting, namespacing.

Synthetic telemetry streams stand in for a server + workers, so every
geometric property (offset estimation, monotonic reconstruction,
cross-process parent edges) is asserted against hand-computed values.
The loopback integration test in ``tests/net/test_tcp_end_to_end.py``
covers the same pipeline on real processes.
"""

import pytest

from repro.telemetry import (
    count_remote_parented,
    estimate_clock_offset,
    merge_traces,
    to_chrome_trace,
)


def span(name, span_id, ts, dur, parent_id=None, ts_mono=None, attrs=None, thread="main"):
    rec = {
        "type": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "thread": thread,
        "ts": ts,
        "dur_s": dur,
        "attrs": attrs or {},
    }
    if ts_mono is not None:
        rec["ts_mono"] = ts_mono
    return rec


def clock(offset_s, rtt_s):
    return {"type": "clock", "offset_s": offset_s, "rtt_s": rtt_s}


def proc(role, wall, mono, **extra):
    return {"type": "proc", "role": role, "wall": wall, "mono": mono, **extra}


class TestClockOffset:
    def test_no_samples_falls_back_to_zero(self):
        assert estimate_clock_offset([]) == (0.0, 0.0)
        assert estimate_clock_offset([{"type": "span"}]) == (0.0, 0.0)

    def test_single_sample(self):
        off, rtt = estimate_clock_offset([clock(0.25, 0.001)])
        assert off == 0.25 and rtt == 0.001

    def test_min_rtt_filtering_ignores_inflated_samples(self):
        # echoes stamped late while the worker trained: huge RTT, offsets
        # off by ~rtt/2 — they must not contaminate the estimate
        records = [
            clock(-0.48, 0.95),
            clock(-0.73, 1.47),
            clock(0.0101, 0.0010),
            clock(0.0100, 0.0011),
            clock(0.0099, 0.0012),
        ]
        off, rtt = estimate_clock_offset(records)
        assert off == pytest.approx(0.0100)
        assert rtt == pytest.approx(0.0010)

    def test_median_of_three_best(self):
        records = [clock(0.5, 0.01), clock(0.1, 0.02), clock(0.3, 0.03), clock(9.9, 5.0)]
        off, rtt = estimate_clock_offset(records)
        assert off == 0.3  # median of {0.5, 0.1, 0.3}
        assert rtt == 0.01


class TestMergeTraces:
    def server_stream(self):
        return [
            proc("server", wall=1000.0, mono=50.0),
            span("round", 7, ts=1000.5, dur=2.0, ts_mono=50.5, attrs={"round": 0}),
        ]

    def worker_stream(self, *, skew=0.0):
        # the worker's wall clock runs `skew` seconds behind the server
        # (its clock samples measure offset = +skew, server ahead); in
        # server time it anchored at 1000.1 and trained [1000.6, 1001.4]
        # — inside the server's round span [1000.5, 1002.5]
        return [
            proc("worker", wall=1000.1 - skew, mono=80.0, clients=[0, 2]),
            clock(skew, 0.001),
            span(
                "local_update",
                3,
                ts=1000.6 - skew,
                dur=0.8,
                ts_mono=80.5,
                attrs={"trace_parent": 7, "round": 0},
            ),
        ]

    def x_events(self, trace):
        return [e for e in trace["traceEvents"] if e.get("ph") == "X"]

    def meta_events(self, trace):
        return [e for e in trace["traceEvents"] if e.get("ph") == "M"]

    def test_processes_get_distinct_pids_and_names(self):
        trace = merge_traces(self.server_stream(), [self.worker_stream()])
        names = {
            e["pid"]: e["args"]["name"]
            for e in self.meta_events(trace)
            if e["name"] == "process_name"
        }
        assert names[0] == "server"
        assert names[1] == "worker clients=[0, 2]"

    def test_span_ids_are_namespaced_per_process(self):
        # same span_id in two processes must not cross-link
        worker = self.worker_stream()
        worker[-1]["span_id"] = 7  # collide with the server round span
        worker[-1]["attrs"] = {}
        trace = merge_traces(self.server_stream(), [worker])
        uids = {e["args"]["span_uid"] for e in self.x_events(trace)}
        assert uids == {"0:7", "1:7"}
        assert count_remote_parented(trace) == 0

    def test_remote_parent_edge(self):
        trace = merge_traces(self.server_stream(), [self.worker_stream()])
        child = next(e for e in self.x_events(trace) if e["name"] == "local_update")
        assert child["args"]["parent_uid"] == "0:7"
        assert child["args"]["remote_parent"] is True
        assert count_remote_parented(trace) == 1

    def test_local_parent_wins_over_trace_parent(self):
        worker = self.worker_stream()
        worker.append(
            span(
                "net.send",
                4,
                ts=1001.5,
                dur=0.01,
                parent_id=3,
                ts_mono=81.5,
                attrs={"trace_parent": 7},
            )
        )
        trace = merge_traces(self.server_stream(), [worker])
        send = next(e for e in self.x_events(trace) if e["name"] == "net.send")
        assert send["args"]["parent_uid"] == "1:4".replace("4", "3")
        assert "remote_parent" not in send["args"]

    def test_server_spans_never_remote_parent(self):
        # a trace_parent attr on a pid-0 span must not self-link
        server = self.server_stream()
        server.append(span("stray", 9, ts=1001.0, dur=0.1, attrs={"trace_parent": 7}))
        trace = merge_traces(server, [])
        stray = next(e for e in self.x_events(trace) if e["name"] == "stray")
        assert "parent_uid" not in stray["args"]

    @pytest.mark.parametrize("skew", [0.0, -300.0, 12345.6])
    def test_clock_alignment_puts_child_inside_parent(self, skew):
        trace = merge_traces(self.server_stream(), [self.worker_stream(skew=skew)])
        ev = {e["name"]: e for e in self.x_events(trace)}
        parent, child = ev["round"], ev["local_update"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]
        # hand-check: anchor reconstruction + offset puts the child
        # 0.1s + 0.5s after the server anchor regardless of skew
        assert child["ts"] == pytest.approx(1000.6 * 1e6, abs=1.0)

    def test_monotonic_anchor_beats_stepped_wall_clock(self):
        # the worker's wall clock stepped +100s mid-run: ts lies, ts_mono
        # does not — reconstruction must use the anchor
        worker = self.worker_stream()
        worker[-1]["ts"] = 1100.6
        trace = merge_traces(self.server_stream(), [worker])
        child = next(e for e in self.x_events(trace) if e["name"] == "local_update")
        assert child["ts"] == pytest.approx(1000.6 * 1e6, abs=1.0)

    def test_wall_fallback_without_proc_anchor(self):
        worker = self.worker_stream()
        worker.pop(0)  # pre-tracing stream: no proc record
        trace = merge_traces(self.server_stream(), [worker])
        child = next(e for e in self.x_events(trace) if e["name"] == "local_update")
        assert child["ts"] == pytest.approx(1000.6 * 1e6, abs=1.0)

    def test_events_sorted_by_aligned_time(self):
        trace = merge_traces(self.server_stream(), [self.worker_stream(skew=500.0)])
        ts = [e["ts"] for e in self.x_events(trace)]
        assert ts == sorted(ts)


class TestSingleProcessExportUnchanged:
    def test_ts_mono_is_ignored_by_plain_export(self):
        """`repro trace` output is byte-identical with or without ts_mono."""
        base = [
            span("round", 1, ts=10.0, dur=1.0),
            span("aggregate", 2, ts=10.5, dur=0.1, parent_id=1),
        ]
        with_mono = [dict(r, ts_mono=99.0 + i) for i, r in enumerate(base)]
        import json

        a = json.dumps(to_chrome_trace(base), sort_keys=True)
        b = json.dumps(to_chrome_trace(with_mono), sort_keys=True)
        assert a == b

"""Arithmetic ops: forward values, gradients, broadcasting."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck


def _rand(shape, seed=0, offset=0.0):
    return np.random.default_rng(seed).normal(size=shape) + offset


class TestForwardValues:
    def test_add(self):
        assert np.allclose((Tensor([1.0, 2]) + Tensor([3.0, 4])).data, [4, 6])

    def test_radd_scalar(self):
        assert np.allclose((1.0 + Tensor([1.0])).data, [2.0])

    def test_sub(self):
        assert np.allclose((Tensor([5.0]) - 2.0).data, [3.0])

    def test_rsub(self):
        assert np.allclose((10.0 - Tensor([4.0])).data, [6.0])

    def test_mul(self):
        assert np.allclose((Tensor([2.0]) * Tensor([3.0])).data, [6.0])

    def test_div(self):
        assert np.allclose((Tensor([6.0]) / 2.0).data, [3.0])

    def test_rdiv(self):
        assert np.allclose((6.0 / Tensor([2.0])).data, [3.0])

    def test_neg(self):
        assert np.allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        assert np.allclose((Tensor([2.0]) ** 3).data, [8.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a, b = _rand((3, 4)), _rand((4, 5), seed=1)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_vec_vec(self):
        a, b = _rand(4), _rand(4, seed=1)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_mat_vec(self):
        a, b = _rand((3, 4)), _rand(4, seed=1)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_vec_mat(self):
        a, b = _rand(3), _rand((3, 4), seed=1)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_batched(self):
        a, b = _rand((2, 3, 4)), _rand((2, 4, 5), seed=1)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestGradients:
    def test_add_grad(self):
        assert gradcheck(lambda a, b: (a + b).sum(), [_rand((2, 3)), _rand((2, 3), 1)])

    def test_sub_grad(self):
        assert gradcheck(lambda a, b: (a - b).sum(), [_rand((2, 3)), _rand((2, 3), 1)])

    def test_mul_grad(self):
        assert gradcheck(lambda a, b: (a * b).sum(), [_rand((2, 3)), _rand((2, 3), 1)])

    def test_div_grad(self):
        assert gradcheck(lambda a, b: (a / b).sum(), [_rand((2, 3)), _rand((2, 3), 1, offset=3)])

    def test_pow_grad(self):
        assert gradcheck(lambda a: (a**3).sum(), [_rand((2, 3), offset=2)])

    def test_neg_grad(self):
        assert gradcheck(lambda a: (-a).sum(), [_rand((3,))])

    def test_matmul_grad_2d(self):
        assert gradcheck(lambda a, b: (a @ b).sum(), [_rand((2, 3)), _rand((3, 4), 1)])

    def test_matmul_grad_vec(self):
        assert gradcheck(lambda a, b: (a @ b).reshape(1).sum(), [_rand(3), _rand(3, 1)])

    def test_matmul_grad_mat_vec(self):
        assert gradcheck(lambda a, b: (a @ b).sum(), [_rand((2, 3)), _rand(3, 1)])

    def test_matmul_grad_vec_mat(self):
        assert gradcheck(lambda a, b: (a @ b).sum(), [_rand(3), _rand((3, 4), 1)])

    def test_matmul_grad_batched(self):
        assert gradcheck(lambda a, b: (a @ b).sum(), [_rand((2, 2, 3)), _rand((2, 3, 2), 1)])


class TestBroadcastGradients:
    def test_add_broadcast_row(self):
        assert gradcheck(lambda a, b: (a + b).sum(), [_rand((3, 4)), _rand((4,), 1)])

    def test_add_broadcast_col(self):
        assert gradcheck(lambda a, b: (a + b).sum(), [_rand((3, 4)), _rand((3, 1), 1)])

    def test_mul_broadcast_scalar_tensor(self):
        assert gradcheck(lambda a, b: (a * b).sum(), [_rand((3, 4)), _rand((), 1)])

    def test_div_broadcast(self):
        assert gradcheck(lambda a, b: (a / b).sum(), [_rand((2, 3, 4)), _rand((4,), 1, offset=3)])

    def test_chain_broadcast(self):
        assert gradcheck(
            lambda a, b, c: ((a + b) * c).sum(),
            [_rand((2, 3)), _rand((3,), 1), _rand((2, 1), 2)],
        )


class TestGraphStructure:
    def test_diamond_graph(self):
        # z = x*y + x*y reuses the same intermediate twice
        a = Tensor([2.0], requires_grad=True)
        b = a * 3
        c = b + b
        c.sum().backward()
        assert np.allclose(a.grad, [6.0])

    def test_shared_input_multiple_ops(self):
        a = Tensor([2.0], requires_grad=True)
        ((a * a) + (a * 3)).sum().backward()
        assert np.allclose(a.grad, [2 * 2 + 3])

    def test_deep_chain_no_recursion_error(self):
        # iterative topo sort must handle graphs deeper than the recursion limit
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):
            x = x * 1.0
        x.sum().backward()
        assert np.allclose(a.grad, [1.0])

    def test_backward_frees_intermediate_state(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2
        c = b * 3
        c.sum().backward()
        assert b._backward is None
        assert b._prev == ()
        assert b.grad is None  # intermediates are freed

    def test_constant_branch_gets_no_grad(self):
        a = Tensor([1.0], requires_grad=True)
        k = Tensor([5.0])  # constant
        (a * k).sum().backward()
        assert k.grad is None

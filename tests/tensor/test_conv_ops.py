"""Convolution and pooling kernels: reference values and gradients."""

import numpy as np
import pytest
from scipy import signal

from repro.tensor import (
    Tensor,
    adaptive_avg_pool2d,
    avg_pool2d,
    col2im,
    conv2d,
    depthwise_conv2d,
    gradcheck,
    im2col,
    max_pool2d,
)


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


def _ref_conv2d(x, w, b, stride, padding):
    """Direct cross-correlation reference via scipy.signal.correlate2d."""
    n, c, h, ww_ = x.shape
    f = w.shape[0]
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (xp.shape[2] - w.shape[2]) // stride + 1
    ow = (xp.shape[3] - w.shape[3]) // stride + 1
    out = np.zeros((n, f, oh, ow))
    for ni in range(n):
        for fi in range(f):
            acc = np.zeros((xp.shape[2] - w.shape[2] + 1, xp.shape[3] - w.shape[3] + 1))
            for ci in range(c):
                acc += signal.correlate2d(xp[ni, ci], w[fi, ci], mode="valid")
            out[ni, fi] = acc[::stride, ::stride]
            if b is not None:
                out[ni, fi] += b[fi]
    return out


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_scipy_reference(self, stride, padding):
        x = _rand((2, 3, 8, 8))
        w = _rand((4, 3, 3, 3), 1)
        b = _rand((4,), 2)
        ours = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding).data
        ref = _ref_conv2d(x, w, b, stride, padding)
        assert np.allclose(ours, ref, atol=1e-10)

    def test_1x1_conv(self):
        x = _rand((1, 4, 5, 5))
        w = _rand((2, 4, 1, 1), 1)
        out = conv2d(Tensor(x), Tensor(w)).data
        ref = np.einsum("fc,nchw->nfhw", w[:, :, 0, 0], x)
        assert np.allclose(out, ref)

    def test_no_bias(self):
        x, w = _rand((1, 2, 4, 4)), _rand((3, 2, 3, 3), 1)
        assert conv2d(Tensor(x), Tensor(w)).shape == (1, 3, 2, 2)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(_rand((1, 2, 4, 4))), Tensor(_rand((3, 5, 3, 3))))


class TestConv2dGrad:
    def test_gradcheck_with_bias(self):
        x, w, b = _rand((2, 2, 5, 5)), _rand((3, 2, 3, 3), 1) * 0.4, _rand((3,), 2)
        assert gradcheck(
            lambda x, w, b: conv2d(x, w, b, stride=1, padding=1).sum(), [x, w, b], atol=1e-4
        )

    def test_gradcheck_strided(self):
        x, w = _rand((1, 2, 6, 6)), _rand((2, 2, 3, 3), 1) * 0.4
        assert gradcheck(lambda x, w: (conv2d(x, w, stride=2) ** 2).sum(), [x, w], atol=1e-4)


class TestDepthwise:
    def test_matches_per_channel_conv(self):
        x = _rand((2, 3, 6, 6))
        w = _rand((3, 1, 3, 3), 1)
        out = depthwise_conv2d(Tensor(x), Tensor(w), stride=1, padding=1).data
        for c in range(3):
            ref = _ref_conv2d(x[:, c : c + 1], w[c : c + 1], None, 1, 1)
            assert np.allclose(out[:, c : c + 1], ref, atol=1e-10)

    def test_gradcheck(self):
        x, w = _rand((1, 2, 5, 5)), _rand((2, 1, 3, 3), 1) * 0.4
        assert gradcheck(
            lambda x, w: depthwise_conv2d(x, w, stride=2, padding=1).sum(), [x, w], atol=1e-4
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            depthwise_conv2d(Tensor(_rand((1, 2, 4, 4))), Tensor(_rand((3, 1, 3, 3))))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2, 2).data
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_padding_uses_neg_inf(self):
        x = -np.ones((1, 1, 2, 2))
        out = max_pool2d(Tensor(x), 2, 2, padding=1).data
        # corners see one real value (-1); padding must not win with 0
        assert np.allclose(out, -1.0)

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2, 2).data
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_grad(self):
        x = _rand((2, 2, 6, 6))
        assert gradcheck(lambda a: max_pool2d(a, 2, 2).sum(), [x])

    def test_max_pool_overlapping_grad(self):
        assert gradcheck(lambda a: max_pool2d(a, 3, 1).sum(), [_rand((1, 1, 5, 5))])

    def test_avg_pool_grad(self):
        assert gradcheck(lambda a: avg_pool2d(a, 2, 2).sum(), [_rand((2, 2, 4, 4))])

    def test_avg_pool_overlap_grad(self):
        assert gradcheck(lambda a: (avg_pool2d(a, 3, 1, padding=1) ** 2).sum(), [_rand((1, 2, 4, 4))])

    def test_adaptive_avg_pool(self):
        x = _rand((2, 3, 5, 7))
        out = adaptive_avg_pool2d(Tensor(x)).data
        assert out.shape == (2, 3, 1, 1)
        assert np.allclose(out[..., 0, 0], x.mean((2, 3)))

    def test_adaptive_avg_pool_grad(self):
        assert gradcheck(lambda a: (adaptive_avg_pool2d(a) ** 2).sum(), [_rand((1, 2, 3, 3))])

    def test_adaptive_pool_2x2_even_split(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = adaptive_avg_pool2d(Tensor(x), 2).data
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_adaptive_pool_uneven_bins(self):
        # 5 -> 2 bins: [0,3) and [2,5) per the ceil/floor convention
        x = np.arange(5.0).reshape(1, 1, 1, 5)
        out = adaptive_avg_pool2d(Tensor(np.repeat(x, 5, axis=2)), 2).data
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out[0, 0, 0], [1.0, 3.0])

    def test_adaptive_pool_general_grad(self):
        assert gradcheck(lambda a: (adaptive_avg_pool2d(a, 2) ** 2).sum(), [_rand((1, 2, 5, 5))])
        assert gradcheck(lambda a: (adaptive_avg_pool2d(a, 3) ** 2).sum(), [_rand((1, 1, 7, 7))])

    def test_adaptive_pool_upsampling_repeats(self):
        # output larger than input: bins repeat pixels (PyTorch semantics)
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        out = adaptive_avg_pool2d(Tensor(x), 3).data
        assert out.shape == (1, 1, 3, 3)
        assert out[0, 0, 0, 0] == 1.0 and out[0, 0, 2, 2] == 4.0

    def test_adaptive_pool_upsampling_grad(self):
        assert gradcheck(lambda a: (adaptive_avg_pool2d(a, 3) ** 2).sum(), [_rand((1, 1, 2, 2))])


class TestIm2Col:
    def test_roundtrip_counts(self):
        # col2im(im2col(x)) multiplies each pixel by its window membership count
        x = np.ones((1, 1, 4, 4))
        cols, oh, ow = im2col(x, 2, 2, 1)
        back = col2im(cols, x.shape, 2, 2, 1)
        # center pixels belong to 4 windows, corners to 1
        assert back[0, 0, 0, 0] == 1
        assert back[0, 0, 1, 1] == 4

    def test_shapes(self):
        x = _rand((2, 3, 5, 5))
        cols, oh, ow = im2col(x, 3, 3, 2)
        assert cols.shape == (2, 3 * 9, oh * ow)
        assert (oh, ow) == (2, 2)

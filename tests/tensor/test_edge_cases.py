"""Edge cases across the autograd engine and layers."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, concat, conv2d, gradcheck, max_pool2d, softmax


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestDtypePropagation:
    def test_float32_stays_float32(self):
        a = Tensor(np.ones(3, dtype=np.float32))
        b = Tensor(np.ones(3, dtype=np.float32))
        assert (a + b).dtype == np.float32
        assert (a * b).dtype == np.float32

    def test_grad_dtype_matches_data(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (a * 2).sum().backward()
        assert a.grad.dtype == np.float32


class TestDegenerateShapes:
    def test_empty_tensor_ops(self):
        a = Tensor(np.zeros((0, 3)))
        assert (a + 1).shape == (0, 3)
        assert a.sum().item() == 0.0

    def test_single_element(self):
        a = Tensor([[2.0]], requires_grad=True)
        (a @ Tensor([[3.0]])).sum().backward()
        assert np.allclose(a.grad, [[3.0]])

    def test_scalar_broadcast_everywhere(self):
        s = Tensor(2.0, requires_grad=True)
        m = Tensor(_rand((3, 4)))
        (s * m).sum().backward()
        assert np.isclose(s.grad, m.data.sum())

    def test_batch_size_one_conv(self):
        out = conv2d(Tensor(_rand((1, 1, 4, 4))), Tensor(_rand((2, 1, 3, 3), 1)))
        assert out.shape == (1, 2, 2, 2)

    def test_minimum_pool_input(self):
        out = max_pool2d(Tensor(_rand((1, 1, 2, 2))), 2, 2)
        assert out.shape == (1, 1, 1, 1)


class TestNumericalExtremes:
    def test_softmax_with_neg_inf_like_values(self):
        x = Tensor(np.array([[-1e308, 0.0, 1e2]]))
        out = softmax(x, axis=1).data
        assert np.isfinite(out).all()
        assert np.isclose(out.sum(), 1.0)

    def test_backward_through_large_values(self):
        a = Tensor(np.array([700.0]), requires_grad=True)
        # exp(700) overflows float64 — tanh saturates first in this graph
        out = a.tanh().sum()
        out.backward()
        assert np.isfinite(a.grad).all()

    def test_division_near_zero_reference(self):
        assert gradcheck(lambda a: (a / 1e-3).sum(), [_rand((3,))])


class TestGraphReuse:
    def test_same_tensor_in_both_matmul_slots(self):
        a = Tensor(_rand((3, 3)), requires_grad=True)
        (a @ a).sum().backward()
        num = np.zeros((3, 3))
        eps = 1e-6
        base = a.data.copy()
        for i in range(3):
            for j in range(3):
                p = base.copy()
                p[i, j] += eps
                m = base.copy()
                m[i, j] -= eps
                num[i, j] = ((p @ p).sum() - (m @ m).sum()) / (2 * eps)
        assert np.allclose(a.grad, num, atol=1e-4)

    def test_concat_of_same_tensor(self):
        a = Tensor(_rand((2, 2)), requires_grad=True)
        concat([a, a], axis=0).sum().backward()
        assert np.allclose(a.grad, 2 * np.ones((2, 2)))

    def test_multiple_outputs_from_shared_subgraph(self):
        a = Tensor([3.0], requires_grad=True)
        h = a * 2
        (h * h).sum().backward()
        assert np.allclose(a.grad, [2 * 4 * 3])  # d/da (2a)² = 8a


class TestModuleEdgeCases:
    def test_sequential_empty(self):
        m = nn.Sequential()
        x = Tensor(_rand((2, 2)))
        assert m(x) is x

    def test_nested_sequential_state_dict(self):
        m = nn.Sequential(nn.Sequential(nn.Linear(2, 2)), nn.Linear(2, 2))
        sd = m.state_dict()
        assert "0.0.weight" in sd and "1.weight" in sd
        m.load_state_dict(sd)

    def test_linear_1d_batchless_input(self):
        lin = nn.Linear(4, 2)
        out = lin(Tensor(_rand(4)))
        assert out.shape == (2,)

    def test_conv_rejects_wrong_rank(self):
        conv = nn.Conv2d(1, 1, 3)
        with pytest.raises((ValueError, IndexError)):
            conv(Tensor(_rand((4, 4))))

    def test_bn_num_features_one(self):
        bn = nn.BatchNorm2d(1)
        out = bn(Tensor(_rand((4, 1, 3, 3))))
        assert out.shape == (4, 1, 3, 3)


class TestSeedSensitivity:
    def test_different_seeds_different_runs(self, micro_spec):
        from dataclasses import replace

        from repro.core import FedClassAvg
        from repro.federated import build_federation

        curves = []
        for seed in (0, 1):
            clients, _ = build_federation(replace(micro_spec, seed=seed))
            curves.append(FedClassAvg(clients, seed=seed).run(1).mean_curve.tolist())
        assert curves[0] != curves[1]

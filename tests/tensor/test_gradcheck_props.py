"""Property-based tests (hypothesis) on autograd invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import Tensor, gradcheck, softmax, unbroadcast

finite_floats = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False, width=64
)


def small_arrays(max_dims=2, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=25, deadline=None)
@given(small_arrays())
def test_add_zero_identity(x):
    t = Tensor(x, requires_grad=True)
    out = t + np.zeros_like(x)
    assert np.allclose(out.data, x)
    out.sum().backward()
    assert np.allclose(t.grad, np.ones_like(x))


@settings(max_examples=25, deadline=None)
@given(small_arrays())
def test_mul_one_identity(x):
    t = Tensor(x, requires_grad=True)
    (t * np.ones_like(x)).sum().backward()
    assert np.allclose(t.grad, np.ones_like(x))


@settings(max_examples=25, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    assert np.allclose(t.grad, np.ones_like(x))


@settings(max_examples=25, deadline=None)
@given(small_arrays())
def test_linearity_of_grad(x):
    """grad of (a*f) is a * grad of f."""
    t1 = Tensor(x, requires_grad=True)
    (t1 * t1).sum().backward()
    g1 = t1.grad.copy()
    t2 = Tensor(x, requires_grad=True)
    ((t2 * t2) * 3.0).sum().backward()
    assert np.allclose(t2.grad, 3.0 * g1)


@settings(max_examples=25, deadline=None)
@given(small_arrays(max_dims=2))
def test_softmax_simplex(x):
    if x.ndim == 1:
        x = x[None]
    out = softmax(Tensor(x), axis=-1).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@settings(max_examples=25, deadline=None)
@given(small_arrays(max_dims=2))
def test_softmax_shift_invariance(x):
    if x.ndim == 1:
        x = x[None]
    a = softmax(Tensor(x), axis=-1).data
    b = softmax(Tensor(x + 100.0), axis=-1).data
    assert np.allclose(a, b, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)
def test_unbroadcast_inverts_broadcast_shapes(a, b, c):
    """For any broadcastable pair, unbroadcast returns the original shape."""
    full = np.ones((a, b, c))
    for shape in [(1, b, c), (a, 1, c), (a, b, 1), (b, c), (c,), ()]:
        g = unbroadcast(full, shape)
        assert g.shape == shape


@settings(max_examples=10, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, 4), st.integers(2, 4)),
        elements=st.floats(min_value=-2, max_value=2, allow_nan=False, width=64),
    )
)
def test_gradcheck_on_random_composite(x):
    """Finite differences agree with autograd on a random composite fn."""
    assert gradcheck(lambda a: ((a * a).tanh() + a.exp() * 0.1).sum(), [x], atol=1e-4)

"""Elementwise math ops: values and gradients."""

import numpy as np

from repro.tensor import (
    Tensor,
    abs_,
    clip,
    exp,
    gradcheck,
    leaky_relu,
    log,
    maximum,
    minimum,
    relu,
    sigmoid,
    sqrt,
    tanh,
    where,
)


def _rand(shape, seed=0, offset=0.0):
    return np.random.default_rng(seed).normal(size=shape) + offset


class TestValues:
    def test_exp(self):
        x = _rand((3,))
        assert np.allclose(exp(Tensor(x)).data, np.exp(x))

    def test_log(self):
        x = np.abs(_rand((3,))) + 1
        assert np.allclose(log(Tensor(x)).data, np.log(x))

    def test_sqrt(self):
        x = np.abs(_rand((3,))) + 1
        assert np.allclose(sqrt(Tensor(x)).data, np.sqrt(x))

    def test_tanh(self):
        x = _rand((3,))
        assert np.allclose(tanh(Tensor(x)).data, np.tanh(x))

    def test_sigmoid_stable_large_negative(self):
        out = sigmoid(Tensor([-1000.0])).data
        assert np.isfinite(out).all() and out[0] < 1e-10

    def test_sigmoid_stable_large_positive(self):
        out = sigmoid(Tensor([1000.0])).data
        assert np.isfinite(out).all() and out[0] > 1 - 1e-10

    def test_relu(self):
        assert np.allclose(relu(Tensor([-1.0, 0.0, 2.0])).data, [0, 0, 2])

    def test_leaky_relu(self):
        assert np.allclose(leaky_relu(Tensor([-10.0, 10.0]), 0.1).data, [-1.0, 10.0])

    def test_abs(self):
        assert np.allclose(abs_(Tensor([-2.0, 3.0])).data, [2, 3])

    def test_clip(self):
        assert np.allclose(clip(Tensor([-5.0, 0.5, 5.0]), -1, 1).data, [-1, 0.5, 1])

    def test_maximum_minimum(self):
        a, b = Tensor([1.0, 4.0]), Tensor([2.0, 3.0])
        assert np.allclose(maximum(a, b).data, [2, 4])
        assert np.allclose(minimum(a, b).data, [1, 3])

    def test_where(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert np.allclose(out.data, [1, 2])

    def test_method_forms(self):
        x = Tensor([0.5])
        for name in ("exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"):
            assert getattr(x, name)().data is not None


class TestGradients:
    def test_exp_grad(self):
        assert gradcheck(lambda a: exp(a).sum(), [_rand((2, 3))])

    def test_log_grad(self):
        assert gradcheck(lambda a: log(a).sum(), [np.abs(_rand((2, 3))) + 1])

    def test_sqrt_grad(self):
        assert gradcheck(lambda a: sqrt(a).sum(), [np.abs(_rand((2, 3))) + 1])

    def test_tanh_grad(self):
        assert gradcheck(lambda a: tanh(a).sum(), [_rand((2, 3))])

    def test_sigmoid_grad(self):
        assert gradcheck(lambda a: sigmoid(a).sum(), [_rand((2, 3))])

    def test_relu_grad(self):
        x = _rand((3, 3))
        x[np.abs(x) < 0.1] += 0.5  # keep away from the kink
        assert gradcheck(lambda a: relu(a).sum(), [x])

    def test_leaky_relu_grad(self):
        x = _rand((3, 3))
        x[np.abs(x) < 0.1] += 0.5
        assert gradcheck(lambda a: leaky_relu(a, 0.2).sum(), [x])

    def test_abs_grad(self):
        x = _rand((3,))
        x[np.abs(x) < 0.1] = 0.5
        assert gradcheck(lambda a: abs_(a).sum(), [x])

    def test_clip_grad_interior(self):
        assert gradcheck(lambda a: clip(a, -10, 10).sum(), [_rand((3,))])

    def test_clip_grad_zero_outside(self):
        x = Tensor([5.0], requires_grad=True)
        clip(x, -1, 1).sum().backward()
        assert np.allclose(x.grad, [0.0])

    def test_maximum_grad(self):
        a, b = _rand((4,)), _rand((4,), 1)
        b += np.where(np.abs(a - b) < 0.1, 0.5, 0.0)
        assert gradcheck(lambda x, y: maximum(x, y).sum(), [a, b])

    def test_minimum_grad(self):
        a, b = _rand((4,)), _rand((4,), 1)
        b += np.where(np.abs(a - b) < 0.1, 0.5, 0.0)
        assert gradcheck(lambda x, y: minimum(x, y).sum(), [a, b])

    def test_where_grad(self):
        cond = np.array([[True, False], [False, True]])
        assert gradcheck(
            lambda a, b: where(cond, a, b).sum(), [_rand((2, 2)), _rand((2, 2), 1)]
        )

    def test_composite_grad(self):
        assert gradcheck(
            lambda a: (sigmoid(a) * tanh(a) + exp(-abs_(a) - 1)).sum(),
            [_rand((3,), offset=1)],
        )

"""Reductions and normalization ops."""

import numpy as np

from repro.tensor import (
    Tensor,
    gradcheck,
    log_softmax,
    logsumexp,
    max_,
    mean,
    min_,
    norm,
    softmax,
    sum_,
    var,
)


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestValues:
    def test_sum_all(self):
        x = _rand((3, 4))
        assert np.isclose(sum_(Tensor(x)).item(), x.sum())

    def test_sum_axis_keepdims(self):
        x = _rand((3, 4))
        out = sum_(Tensor(x), axis=1, keepdims=True)
        assert out.shape == (3, 1)
        assert np.allclose(out.data, x.sum(1, keepdims=True))

    def test_sum_multi_axis(self):
        x = _rand((2, 3, 4))
        assert np.allclose(sum_(Tensor(x), axis=(0, 2)).data, x.sum((0, 2)))

    def test_mean(self):
        x = _rand((3, 4))
        assert np.allclose(mean(Tensor(x), axis=0).data, x.mean(0))

    def test_max_min(self):
        x = _rand((3, 4))
        assert np.allclose(max_(Tensor(x), axis=1).data, x.max(1))
        assert np.allclose(min_(Tensor(x), axis=1).data, x.min(1))

    def test_var(self):
        x = _rand((5, 4))
        assert np.allclose(var(Tensor(x), axis=0).data, x.var(0))

    def test_logsumexp_matches_naive(self):
        x = _rand((3, 4))
        naive = np.log(np.exp(x).sum(1))
        assert np.allclose(logsumexp(Tensor(x), axis=1).data, naive)

    def test_logsumexp_stable(self):
        x = np.array([[1000.0, 1000.0]])
        assert np.isfinite(logsumexp(Tensor(x), axis=1).data).all()

    def test_softmax_rows_sum_to_one(self):
        out = softmax(Tensor(_rand((3, 5))), axis=1).data
        assert np.allclose(out.sum(1), 1.0)
        assert (out > 0).all()

    def test_softmax_stable(self):
        out = softmax(Tensor([[1000.0, 0.0]]), axis=1).data
        assert np.isfinite(out).all()

    def test_log_softmax_consistency(self):
        x = _rand((3, 5))
        assert np.allclose(
            log_softmax(Tensor(x), axis=1).data, np.log(softmax(Tensor(x), axis=1).data)
        )

    def test_norm(self):
        x = _rand((4,))
        assert np.isclose(norm(Tensor(x)).item(), np.linalg.norm(x), atol=1e-5)

    def test_norm_axis(self):
        x = _rand((3, 4))
        assert np.allclose(norm(Tensor(x), axis=1).data, np.linalg.norm(x, axis=1), atol=1e-5)


class TestGradients:
    def test_sum_grad(self):
        assert gradcheck(lambda a: (sum_(a, axis=0) ** 2).sum(), [_rand((3, 4))])

    def test_sum_keepdims_grad(self):
        assert gradcheck(lambda a: (sum_(a, axis=1, keepdims=True) ** 2).sum(), [_rand((3, 4))])

    def test_mean_grad(self):
        assert gradcheck(lambda a: (mean(a, axis=(0, 2)) ** 2).sum(), [_rand((2, 3, 4))])

    def test_max_grad(self):
        x = _rand((3, 4))
        assert gradcheck(lambda a: max_(a, axis=1).sum(), [x])

    def test_max_grad_with_ties_splits(self):
        x = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        max_(x, axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_min_grad(self):
        assert gradcheck(lambda a: min_(a, axis=0).sum(), [_rand((3, 4))])

    def test_var_grad(self):
        assert gradcheck(lambda a: var(a, axis=0).sum(), [_rand((4, 3))])

    def test_logsumexp_grad(self):
        assert gradcheck(lambda a: logsumexp(a, axis=1).sum(), [_rand((3, 4))])

    def test_logsumexp_keepdims_grad(self):
        assert gradcheck(lambda a: logsumexp(a, axis=0, keepdims=True).sum(), [_rand((3, 4))])

    def test_softmax_grad(self):
        assert gradcheck(lambda a: (softmax(a, axis=1) ** 2).sum(), [_rand((3, 4))])

    def test_log_softmax_grad(self):
        assert gradcheck(lambda a: (log_softmax(a, axis=1) * log_softmax(a, axis=1)).sum(), [_rand((3, 4))])

    def test_norm_grad(self):
        assert gradcheck(lambda a: norm(a), [_rand((4,))])

    def test_grad_full_reduction_scalar(self):
        assert gradcheck(lambda a: mean(a), [_rand((3, 4))])

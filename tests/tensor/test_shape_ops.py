"""Shape-manipulation ops: values and gradients."""

import numpy as np
import pytest

from repro.tensor import Tensor, concat, flatten, getitem, gradcheck, pad2d, repeat, reshape, stack, transpose


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestValues:
    def test_reshape(self):
        x = _rand((2, 6))
        assert reshape(Tensor(x), 3, 4).shape == (3, 4)

    def test_reshape_tuple_arg(self):
        assert reshape(Tensor(_rand((2, 6))), (4, 3)).shape == (4, 3)

    def test_reshape_minus_one(self):
        assert reshape(Tensor(_rand((2, 6))), (-1,)).shape == (12,)

    def test_transpose_default_reverses(self):
        assert transpose(Tensor(_rand((2, 3, 4)))).shape == (4, 3, 2)

    def test_transpose_axes(self):
        x = _rand((2, 3, 4))
        assert np.allclose(transpose(Tensor(x), (1, 0, 2)).data, x.transpose(1, 0, 2))

    def test_t_property(self):
        x = _rand((2, 3))
        assert np.allclose(Tensor(x).T.data, x.T)

    def test_flatten(self):
        assert flatten(Tensor(_rand((2, 3, 4)))).shape == (2, 12)

    def test_flatten_start_dim(self):
        assert flatten(Tensor(_rand((2, 3, 4, 5))), start_dim=2).shape == (2, 3, 20)

    def test_concat(self):
        a, b = _rand((2, 3)), _rand((2, 2), 1)
        out = concat([Tensor(a), Tensor(b)], axis=1)
        assert np.allclose(out.data, np.concatenate([a, b], axis=1))

    def test_stack(self):
        a, b = _rand((2, 3)), _rand((2, 3), 1)
        out = stack([Tensor(a), Tensor(b)], axis=0)
        assert out.shape == (2, 2, 3)

    def test_pad2d_int(self):
        out = pad2d(Tensor(_rand((1, 1, 3, 3))), 2)
        assert out.shape == (1, 1, 7, 7)
        assert np.allclose(out.data[0, 0, 0], 0)

    def test_pad2d_zero_is_identity(self):
        x = Tensor(_rand((1, 1, 3, 3)))
        assert pad2d(x, 0) is x

    def test_pad2d_asymmetric_tuple(self):
        out = pad2d(Tensor(_rand((1, 1, 3, 3))), (1, 2))
        assert out.shape == (1, 1, 5, 7)

    def test_getitem_slice(self):
        x = _rand((4, 5))
        assert np.allclose(Tensor(x)[1:3].data, x[1:3])

    def test_getitem_fancy(self):
        x = _rand((4, 5))
        idx = (np.array([0, 2]), np.array([1, 3]))
        assert np.allclose(getitem(Tensor(x), idx).data, x[idx])

    def test_repeat(self):
        x = _rand((2, 2))
        assert repeat(Tensor(x), 3, axis=0).shape == (6, 2)


class TestGradients:
    def test_reshape_grad(self):
        assert gradcheck(lambda a: (reshape(a, 6) ** 2).sum(), [_rand((2, 3))])

    def test_transpose_grad(self):
        assert gradcheck(lambda a: (transpose(a, (2, 0, 1)) ** 2).sum(), [_rand((2, 3, 4))])

    def test_concat_grad(self):
        assert gradcheck(
            lambda a, b: (concat([a, b], axis=0) ** 2).sum(), [_rand((2, 3)), _rand((1, 3), 1)]
        )

    def test_stack_grad(self):
        assert gradcheck(
            lambda a, b: (stack([a, b], axis=1) ** 2).sum(), [_rand((2, 3)), _rand((2, 3), 1)]
        )

    def test_pad_grad(self):
        assert gradcheck(lambda a: (pad2d(a, 1) ** 2).sum(), [_rand((1, 2, 3, 3))])

    def test_getitem_slice_grad(self):
        assert gradcheck(lambda a: (a[1:3, ::2] ** 2).sum(), [_rand((4, 5))])

    def test_getitem_fancy_grad_with_duplicates(self):
        # duplicated indices must accumulate via scatter-add
        idx = np.array([0, 0, 1])
        x = Tensor(_rand((3,)), requires_grad=True)
        x[idx].sum().backward()
        assert np.allclose(x.grad, [2.0, 1.0, 0.0])

    def test_repeat_grad(self):
        assert gradcheck(lambda a: (repeat(a, 2, axis=1) ** 2).sum(), [_rand((2, 3))])

    def test_flatten_grad(self):
        assert gradcheck(lambda a: (flatten(a) ** 2).sum(), [_rand((2, 2, 2))])

"""Core Tensor behaviour: construction, dtype handling, tape basics."""

import numpy as np
import pytest

from repro.tensor import Tensor, as_tensor, no_grad, unbroadcast


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_int_input_upcast_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float64

    def test_bool_input_upcast_to_float(self):
        t = Tensor(np.array([True, False]))
        assert t.dtype == np.float64

    def test_float32_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float32

    def test_scalar(self):
        t = Tensor(2.5)
        assert t.shape == ()
        assert t.item() == 2.5

    def test_properties(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_numpy_returns_backing_array(self):
        arr = np.ones(3)
        t = Tensor(arr)
        assert t.numpy() is t.data


class TestDetachAndGrads:
    def test_detach_cuts_tape(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        assert b._prev == ()

    def test_detach_shares_data(self):
        a = Tensor([1.0], requires_grad=True)
        assert a.detach().data is a.data

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_requires_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3).backward(np.array([1.0, 10.0]))
        assert np.allclose(a.grad, [3.0, 30.0])

    def test_grad_accumulates_over_backwards(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 1).sum().backward()
        (a * 1).sum().backward()
        assert np.allclose(a.grad, [2.0])


class TestNoGrad:
    def test_no_grad_blocks_tape(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad

    def test_no_grad_blocks_new_tensor_requires_grad(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad

    def test_no_grad_restores(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        assert (a * 2).requires_grad

    def test_nested_enable_grad(self):
        from repro.tensor import enable_grad

        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                b = a * 2
        assert b.requires_grad


class TestUnbroadcast:
    def test_identity_when_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sum_leading_axes(self):
        g = np.ones((4, 2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)
        assert np.all(unbroadcast(g, (2, 3)) == 4)

    def test_sum_stretched_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert np.all(out == 3)

    def test_combined(self):
        g = np.ones((5, 2, 3))
        out = unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        assert np.all(out == 10)

    def test_scalar_target(self):
        g = np.ones((2, 2))
        assert unbroadcast(g, ()).item() == 4


class TestAsTensor:
    def test_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_wraps_array(self):
        assert isinstance(as_tensor(np.ones(2)), Tensor)

    def test_wraps_scalar(self):
        assert as_tensor(3.0).item() == 3.0


class TestComparisons:
    def test_comparisons_return_bool_arrays(self):
        a = Tensor([1.0, 2.0, 3.0])
        b = Tensor([2.0, 2.0, 2.0])
        assert np.array_equal(a > b, [False, False, True])
        assert np.array_equal(a < b, [True, False, False])
        assert np.array_equal(a >= b, [False, True, True])
        assert np.array_equal(a <= b, [True, True, False])

    def test_comparison_with_scalar(self):
        a = Tensor([1.0, 3.0])
        assert np.array_equal(a > 2.0, [False, True])

"""CLI runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.algorithm == "fedclassavg"
        assert args.partition == "dirichlet"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithm", "fedfoo"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fedclassavg" in out and "emnist" in out

    def test_fedavg_requires_homogeneous(self, capsys):
        assert main(["--algorithm", "fedavg"]) == 2

    def test_micro_run(self, capsys):
        rc = main(
            [
                "--algorithm",
                "fedclassavg",
                "--clients",
                "3",
                "--rounds",
                "1",
                "--dataset",
                "fashion_mnist-tiny",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out
        assert "communication" in out

    def test_micro_homogeneous_run(self, capsys):
        rc = main(
            [
                "--algorithm",
                "fedavg",
                "--homogeneous",
                "cnn2layer",
                "--clients",
                "3",
                "--rounds",
                "1",
            ]
        )
        assert rc == 0
        assert "fedavg" in capsys.readouterr().out


class TestReportAndDiffSubcommands:
    """End-to-end smoke: run --telemetry, then report and diff the JSONL."""

    def _run(self, path, seed=0):
        rc = main(
            [
                "--clients",
                "3",
                "--rounds",
                "2",
                "--dataset",
                "fashion_mnist-tiny",
                "--seed",
                str(seed),
                "--telemetry",
                path,
            ]
        )
        assert rc == 0

    def test_run_report_diff_pipeline(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        self._run(path)
        capsys.readouterr()

        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "per-client health:" in out
        assert "per-round breakdown:" in out
        assert "loss trend" in out
        assert "alerts (" in out

        # a run diffed against itself passes the gate
        assert main(["diff", path, path, "--gate"]) == 0
        out = capsys.readouterr().out
        assert "final_acc" in out and "gate: OK" in out

    def test_profile_ops_flag_defaults_off(self):
        args = build_parser().parse_args([])
        assert args.profile_ops is False

    def test_diff_gate_fails_on_seeded_regression(self, tmp_path, capsys):
        import json

        def write(path, mean_acc):
            with open(path, "w") as fh:
                fh.write(
                    json.dumps(
                        {
                            "type": "round",
                            "round": 0,
                            "algorithm": "fedclassavg",
                            "bytes": 100,
                            "bytes_up": 50,
                            "bytes_down": 50,
                            "wall_s": 1.0,
                            "compute_s": 0.8,
                            "comm_s": 0.1,
                            "mean_acc": mean_acc,
                            "evaluated": True,
                        }
                    )
                    + "\n"
                )

        base, cand = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        write(base, 0.80)
        write(cand, 0.70)
        # without --gate: report the regression but exit 0
        assert main(["diff", base, cand]) == 0
        assert "FAIL" in capsys.readouterr().out
        # with --gate: non-zero exit for CI
        assert main(["diff", base, cand, "--gate"]) == 1
        assert "regressed" in capsys.readouterr().err
        # improvement direction passes
        assert main(["diff", cand, base, "--gate"]) == 0

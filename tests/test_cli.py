"""CLI runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.algorithm == "fedclassavg"
        assert args.partition == "dirichlet"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithm", "fedfoo"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fedclassavg" in out and "emnist" in out

    def test_fedavg_requires_homogeneous(self, capsys):
        assert main(["--algorithm", "fedavg"]) == 2

    def test_micro_run(self, capsys):
        rc = main(
            [
                "--algorithm",
                "fedclassavg",
                "--clients",
                "3",
                "--rounds",
                "1",
                "--dataset",
                "fashion_mnist-tiny",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out
        assert "communication" in out

    def test_micro_homogeneous_run(self, capsys):
        rc = main(
            [
                "--algorithm",
                "fedavg",
                "--homogeneous",
                "cnn2layer",
                "--clients",
                "3",
                "--rounds",
                "1",
            ]
        )
        assert rc == 0
        assert "fedavg" in capsys.readouterr().out


class TestReportAndDiffSubcommands:
    """End-to-end smoke: run --telemetry, then report and diff the JSONL."""

    def _run(self, path, seed=0):
        rc = main(
            [
                "--clients",
                "3",
                "--rounds",
                "2",
                "--dataset",
                "fashion_mnist-tiny",
                "--seed",
                str(seed),
                "--telemetry",
                path,
            ]
        )
        assert rc == 0

    def test_run_report_diff_pipeline(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        self._run(path)
        capsys.readouterr()

        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "per-client health:" in out
        assert "per-round breakdown:" in out
        assert "loss trend" in out
        assert "alerts (" in out

        # a run diffed against itself passes the gate
        assert main(["diff", path, path, "--gate"]) == 0
        out = capsys.readouterr().out
        assert "final_acc" in out and "gate: OK" in out

    def test_profile_ops_flag_defaults_off(self):
        args = build_parser().parse_args([])
        assert args.profile_ops is False

    def test_diff_gate_fails_on_seeded_regression(self, tmp_path, capsys):
        import json

        def write(path, mean_acc):
            with open(path, "w") as fh:
                fh.write(
                    json.dumps(
                        {
                            "type": "round",
                            "round": 0,
                            "algorithm": "fedclassavg",
                            "bytes": 100,
                            "bytes_up": 50,
                            "bytes_down": 50,
                            "wall_s": 1.0,
                            "compute_s": 0.8,
                            "comm_s": 0.1,
                            "mean_acc": mean_acc,
                            "evaluated": True,
                        }
                    )
                    + "\n"
                )

        base, cand = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        write(base, 0.80)
        write(cand, 0.70)
        # without --gate: report the regression but exit 0
        assert main(["diff", base, cand]) == 0
        assert "FAIL" in capsys.readouterr().out
        # with --gate: non-zero exit for CI
        assert main(["diff", base, cand, "--gate"]) == 1
        assert "regressed" in capsys.readouterr().err
        # improvement direction passes
        assert main(["diff", cand, base, "--gate"]) == 0


class TestTraceSubcommand:
    def _run(self, path):
        rc = main(
            [
                "--clients",
                "3",
                "--rounds",
                "2",
                "--dataset",
                "fashion_mnist-tiny",
                "--telemetry",
                path,
            ]
        )
        assert rc == 0

    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "run.jsonl")
        self._run(path)
        capsys.readouterr()

        out = str(tmp_path / "run.trace.json")
        assert main(["trace", path, "-o", out]) == 0
        assert "perfetto" in capsys.readouterr().out
        with open(out) as fh:
            trace = json.load(fh)
        names = {e.get("name") for e in trace["traceEvents"] if e.get("ph") == "X"}
        assert "round" in names and "local_update" in names

    def test_trace_default_output_and_ascii(self, tmp_path, capsys):
        import os

        path = str(tmp_path / "run.jsonl")
        self._run(path)
        capsys.readouterr()

        assert main(["trace", path, "--ascii"]) == 0
        chart = capsys.readouterr().out
        assert "round 0" in chart and "client 0" in chart

        assert main(["trace", path]) == 0
        assert os.path.exists(path + ".trace.json")


class TestDeepDiveFlags:
    def test_flags_default_off(self):
        args = build_parser().parse_args([])
        assert args.memprof is False and args.record is None

    def test_memprof_and_record_require_telemetry(self, capsys):
        assert main(["--memprof", "--clients", "3", "--rounds", "1"]) == 2
        assert "--telemetry" in capsys.readouterr().err
        assert main(["--record", "/tmp/b", "--clients", "3", "--rounds", "1"]) == 2

    def test_memprof_and_record_run(self, tmp_path, capsys):
        """One telemetered run with both deep-dive flags: the memory
        summary prints, and the (healthy) run arms but never trips the
        flight recorder."""
        rc = main(
            [
                "--clients",
                "3",
                "--rounds",
                "1",
                "--dataset",
                "fashion_mnist-tiny",
                "--telemetry",
                str(tmp_path / "run.jsonl"),
                "--memprof",
                "--record",
                str(tmp_path / "bundles"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "memory profile" in out and "mem_peak" in out
        assert "flight recorder armed, no alerts" in out


class TestReplaySubcommand:
    def test_replay_reproduces_recorded_bundle(self, micro_spec, tmp_path, capsys):
        """Persist a bundle through the alert path, then re-run it via the
        CLI: exit 0 and a REPRODUCED verdict."""
        from dataclasses import asdict

        import numpy as np

        from repro import telemetry
        from repro.core import FedClassAvg
        from repro.federated import build_federation, default_firewall

        tel = telemetry.configure(jsonl=None, recorder=str(tmp_path / "bundles"))
        try:
            tel.recorder.set_run_config(spec=asdict(micro_spec), algorithm="fedclassavg")
            clients, _ = build_federation(micro_spec)
            for p in clients[1].model.parameters():
                p.data[...] = np.nan
            # the firewall quarantines client 1's NaN upload so the run
            # survives to persist the bundle its nan_loss alert triggers
            FedClassAvg(clients, seed=0, firewall=default_firewall()).run(1)
            bundles = list(tel.recorder.bundles_written)
        finally:
            tel.close()
            telemetry.disable()

        bundle = next(p for p in bundles if "client1" in p)
        assert main(["replay", bundle]) == 0
        assert "REPRODUCED" in capsys.readouterr().out


class TestTraceMergeSubcommand:
    def write_jsonl(self, path, records):
        import json

        with open(path, "w") as fh:
            for r in records:
                fh.write(json.dumps(r) + "\n")

    def streams(self, tmp_path, parented=True):
        server = str(tmp_path / "run.jsonl")
        worker = str(tmp_path / "run.rank1.jsonl")
        self.write_jsonl(
            server,
            [
                {"type": "proc", "role": "server", "wall": 100.0, "mono": 5.0},
                {
                    "type": "span", "name": "round", "span_id": 2,
                    "parent_id": None, "thread": "main", "ts": 100.1,
                    "ts_mono": 5.1, "dur_s": 1.0, "attrs": {"round": 0},
                },
            ],
        )
        attrs = {"trace_parent": 2} if parented else {}
        self.write_jsonl(
            worker,
            [
                {"type": "proc", "role": "worker", "wall": 100.0, "mono": 9.0,
                 "clients": [0]},
                {"type": "clock", "offset_s": 0.0, "rtt_s": 0.001},
                {
                    "type": "span", "name": "local_update", "span_id": 2,
                    "parent_id": None, "thread": "main", "ts": 100.2,
                    "ts_mono": 9.2, "dur_s": 0.5, "attrs": attrs,
                },
            ],
        )
        return server, worker

    def test_merges_and_counts_parent_edges(self, tmp_path, capsys):
        import json
        import os

        server, worker = self.streams(tmp_path)
        out = str(tmp_path / "merged.json")
        assert main(["trace-merge", server, worker, "-o", out]) == 0
        assert "1 cross-process parent edge" in capsys.readouterr().out
        with open(out) as fh:
            trace = json.load(fh)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {0, 1}
        # default output path derives from the server file
        assert main(["trace-merge", server, worker]) == 0
        assert os.path.exists(server + ".merged.trace.json")

    def test_require_parented_gates(self, tmp_path, capsys):
        server, worker = self.streams(tmp_path, parented=False)
        out = str(tmp_path / "merged.json")
        assert main(["trace-merge", server, worker, "-o", out, "--require-parented"]) == 1
        assert "FAIL" in capsys.readouterr().err
        server, worker = self.streams(tmp_path, parented=True)
        assert main(["trace-merge", server, worker, "-o", out, "--require-parented"]) == 0


class TestNetObservabilityParsers:
    def test_worker_parser_accepts_telemetry(self):
        from repro.cli import build_worker_parser

        args = build_worker_parser().parse_args(
            ["--server", "h:1", "--client-id", "0", "--telemetry", "w.jsonl"]
        )
        assert args.telemetry == "w.jsonl"
        assert build_worker_parser().parse_args(
            ["--server", "h:1", "--client-id", "0"]
        ).telemetry is None

    def test_bench_net_parser_defaults(self):
        from repro.cli import build_bench_net_parser

        args = build_bench_net_parser().parse_args([])
        assert args.output == "BENCH_latency.json"
        assert args.slowdown == pytest.approx(0.5)
        assert not args.gate

    def test_rank_telemetry_path_derivation(self):
        from repro.net.launcher import rank_telemetry_path

        assert rank_telemetry_path("run.jsonl", 1) == "run.rank1.jsonl"
        assert rank_telemetry_path("/a/b/run.jsonl", 3) == "/a/b/run.rank3.jsonl"
        assert rank_telemetry_path("noext", 2) == "noext.rank2.jsonl"

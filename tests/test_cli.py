"""CLI runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.algorithm == "fedclassavg"
        assert args.partition == "dirichlet"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithm", "fedfoo"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fedclassavg" in out and "emnist" in out

    def test_fedavg_requires_homogeneous(self, capsys):
        assert main(["--algorithm", "fedavg"]) == 2

    def test_micro_run(self, capsys):
        rc = main(
            [
                "--algorithm",
                "fedclassavg",
                "--clients",
                "3",
                "--rounds",
                "1",
                "--dataset",
                "fashion_mnist-tiny",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out
        assert "communication" in out

    def test_micro_homogeneous_run(self, capsys):
        rc = main(
            [
                "--algorithm",
                "fedavg",
                "--homogeneous",
                "cnn2layer",
                "--clients",
                "3",
                "--rounds",
                "1",
            ]
        )
        assert rc == 0
        assert "fedavg" in capsys.readouterr().out

"""Configuration presets and the hyperparameter tuner."""

import numpy as np
import pytest

from repro.config import EXPERIMENT_PRESETS, PAPER_HYPERPARAMS, tiny_preset
from repro.tuning import Choice, LogUniform, RandomSearchTuner, Uniform


class TestPaperHyperparams:
    def test_table1_values_verbatim(self):
        assert PAPER_HYPERPARAMS["cifar10"].learning_rate == 0.0001
        assert PAPER_HYPERPARAMS["fashion_mnist"].learning_rate == 0.0006
        assert PAPER_HYPERPARAMS["fashion_mnist"].rho == 0.4662
        assert PAPER_HYPERPARAMS["emnist"].learning_rate == 0.0005
        assert all(h.batch_size == 64 for h in PAPER_HYPERPARAMS.values())
        assert all(h.local_epochs == 1 for h in PAPER_HYPERPARAMS.values())

    def test_presets_reference_paper_values(self):
        p = EXPERIMENT_PRESETS["paper-cifar10"]
        assert p.lr == PAPER_HYPERPARAMS["cifar10"].learning_rate
        assert p.rho == PAPER_HYPERPARAMS["cifar10"].rho
        assert p.num_clients == 20
        assert p.n_public == 3000

    def test_tiny_preset_overrides(self):
        p = tiny_preset(num_clients=6, rounds=3, lr=0.01)
        assert p.num_clients == 6 and p.rounds == 3 and p.lr == 0.01


class TestSamplers:
    def test_log_uniform_range(self):
        d = LogUniform(1e-4, 1e-1)
        rng = np.random.default_rng(0)
        vals = [d.sample(rng) for _ in range(100)]
        assert all(1e-4 <= v <= 1e-1 for v in vals)
        # log-uniform: median near geometric mean
        assert 1e-3 < np.median(vals) < 1e-2

    def test_log_uniform_validation(self):
        with pytest.raises(ValueError):
            LogUniform(0, 1)
        with pytest.raises(ValueError):
            LogUniform(1, 1)

    def test_uniform(self):
        d = Uniform(2, 3)
        v = d.sample(np.random.default_rng(0))
        assert 2 <= v <= 3
        with pytest.raises(ValueError):
            Uniform(3, 2)

    def test_choice(self):
        d = Choice([8, 16, 32])
        assert d.sample(np.random.default_rng(0)) in (8, 16, 32)
        with pytest.raises(ValueError):
            Choice([])


class TestRandomSearch:
    def test_finds_maximum_region(self):
        # objective peaked at x=0.7
        tuner = RandomSearchTuner(
            space={"x": Uniform(0, 1)},
            objective=lambda p: -((p["x"] - 0.7) ** 2),
            n_trials=50,
            seed=0,
        )
        best = tuner.run()
        assert abs(best.params["x"] - 0.7) < 0.1
        assert len(tuner.trials) == 50

    def test_deterministic(self):
        def run(seed):
            t = RandomSearchTuner(
                space={"x": Uniform(0, 1)}, objective=lambda p: p["x"], n_trials=5, seed=seed
            )
            return t.run().params["x"]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_best_is_max_of_trials(self):
        tuner = RandomSearchTuner(
            space={"x": Uniform(0, 1)}, objective=lambda p: p["x"], n_trials=10, seed=1
        )
        best = tuner.run()
        assert best.score == max(t.score for t in tuner.trials)

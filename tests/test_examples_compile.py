"""Every example script must at least parse and import cleanly."""

import pathlib
import py_compile

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "heterogeneous_cifar.py",
        "ablation_study.py",
        "communication_cost.py",
        "homogeneous_scaling.py",
        "feature_analysis.py",
        "personalization_strategies.py",
        "private_federated.py",
    } <= names


def test_examples_have_main_and_docstring():
    for p in EXAMPLES:
        src = p.read_text()
        assert src.lstrip().startswith('"""'), f"{p.name} missing module docstring"
        assert 'if __name__ == "__main__":' in src, f"{p.name} missing main guard"

"""Public API surface: every exported name exists and is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro.tensor",
    "repro.nn",
    "repro.optim",
    "repro.losses",
    "repro.models",
    "repro.data",
    "repro.partition",
    "repro.comm",
    "repro.federated",
    "repro.core",
    "repro.algorithms",
    "repro.analysis",
    "repro.telemetry",
    "repro.experiments",
    "repro.net",
]


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_all_exports_resolve(pkg_name):
    pkg = importlib.import_module(pkg_name)
    assert hasattr(pkg, "__all__") and pkg.__all__, f"{pkg_name} missing __all__"
    for name in pkg.__all__:
        assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing name {name!r}"


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_public_callables_documented(pkg_name):
    """Every public class/function carries a docstring."""
    pkg = importlib.import_module(pkg_name)
    undocumented = []
    for name in pkg.__all__:
        obj = getattr(pkg, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(f"{pkg_name}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_package_docstring(pkg_name):
    pkg = importlib.import_module(pkg_name)
    assert (pkg.__doc__ or "").strip(), f"{pkg_name} missing package docstring"


def test_no_duplicate_exports_across_algorithms():
    """Algorithm names are unique — registry sanity."""
    from repro import algorithms
    from repro.core import FedClassAvg

    classes = [getattr(algorithms, n) for n in algorithms.__all__]
    names = [c.name for c in classes] + [FedClassAvg.name]
    assert len(names) == len(set(names))


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)

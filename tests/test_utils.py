"""Utility helpers: RNG streams, timer."""

import time

import numpy as np

from repro.utils import Timer
from repro.utils.rng import get_rng, seed_all, spawn_rng


class TestRng:
    def test_seed_all_resets_global(self):
        seed_all(5)
        a = get_rng().random(3)
        seed_all(5)
        b = get_rng().random(3)
        assert np.array_equal(a, b)

    def test_spawn_streams_independent(self):
        seed_all(0)
        a = spawn_rng(1).random(5)
        b = spawn_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_spawn_reproducible(self):
        seed_all(7)
        a = spawn_rng(3).random(5)
        seed_all(7)
        b = spawn_rng(3).random(5)
        assert np.array_equal(a, b)

    def test_spawn_depends_on_root_seed(self):
        seed_all(1)
        a = spawn_rng(0).random(5)
        seed_all(2)
        b = spawn_rng(0).random(5)
        assert not np.array_equal(a, b)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first >= 0.009

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

"""Utility helpers: RNG streams, timer."""

import time

import numpy as np
import pytest

from repro.utils import Timer
from repro.utils.rng import get_rng, seed_all, spawn_rng


class TestRng:
    def test_seed_all_resets_global(self):
        seed_all(5)
        a = get_rng().random(3)
        seed_all(5)
        b = get_rng().random(3)
        assert np.array_equal(a, b)

    def test_spawn_streams_independent(self):
        seed_all(0)
        a = spawn_rng(1).random(5)
        b = spawn_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_spawn_reproducible(self):
        seed_all(7)
        a = spawn_rng(3).random(5)
        seed_all(7)
        b = spawn_rng(3).random(5)
        assert np.array_equal(a, b)

    def test_spawn_depends_on_root_seed(self):
        seed_all(1)
        a = spawn_rng(0).random(5)
        seed_all(2)
        b = spawn_rng(0).random(5)
        assert not np.array_equal(a, b)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first >= 0.009

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_reentrant_nesting(self):
        t = Timer()
        with t:
            with t:
                time.sleep(0.01)
        # two enter/exit pairs each contribute their own interval
        assert t.elapsed >= 0.018

    def test_concurrent_threads_do_not_clobber(self):
        """Regression: two workers entering concurrently used to share _start."""
        import threading

        t = Timer()
        barrier = threading.Barrier(2)

        def work():
            barrier.wait()
            with t:
                time.sleep(0.02)

        threads = [threading.Thread(target=work) for _ in range(2)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        # both intervals accumulate (~0.04 total); the old shared-_start
        # implementation either raised or under-counted one interval
        assert t.elapsed >= 0.036

    def test_exit_without_enter_raises(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            t.__exit__(None, None, None)
